"""Streaming failure monitor: online scoring over a live record feed.

The paper evaluates offline ("the training phases 1 and 2 are performed
offline"), but its motivation is operational: warn *before* the node
dies so jobs can be migrated.  :class:`StreamingMonitor` provides that
deployment surface over a trained model — it consumes raw log records
in timestamp order, maintains per-node episode buffers, scores each
growing episode with the phase-3 online mode, and emits one
:class:`~repro.core.alerts.FailureWarning` per matched episode.

The per-episode single-alert rule mirrors real alerting practice: once a
node is flagged, further events of the same episode do not re-alert;
the buffer resets when the episode closes (terminal seen or the gap
exceeds the episode window).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional

from ..events import Label, ParsedEvent
from ..simlog.record import LogRecord
from ..topology.cray import CrayNodeId
from .alerts import FailureWarning
from .desh import DeshModel

__all__ = ["StreamingMonitor"]


class StreamingMonitor:
    """Per-node streaming episode tracker over a trained Desh model."""

    def __init__(self, model: DeshModel, *, episode_gap: float = 600.0) -> None:
        self.model = model
        self.gap = episode_gap
        self._buffers: dict[CrayNodeId, list[ParsedEvent]] = {}
        self._alerted: set[CrayNodeId] = set()
        self.records_seen = 0
        self.warnings_raised = 0

    # ------------------------------------------------------------------
    def feed(self, record: LogRecord) -> Optional[FailureWarning]:
        """Consume one record; returns a warning when a flag fires.

        Safe-labeled, out-of-vocabulary and system-level records never
        alert.  A node alerts at most once per episode.
        """
        self.records_seen += 1
        event = self.model.parser.encode(record)
        if event is None or event.node is None or event.label == Label.SAFE:
            return None
        buf = self._buffers.setdefault(event.node, [])
        if buf and (
            event.timestamp - buf[-1].timestamp > self.gap or buf[-1].terminal
        ):
            buf.clear()
            self._alerted.discard(event.node)
        buf.append(event)
        if event.node in self._alerted:
            return None
        flagged, mse, lead = self.model.predictor.score_partial(buf)
        if not flagged:
            return None
        self._alerted.add(event.node)
        self.warnings_raised += 1
        likely = None
        if self.model.classifier is not None:
            from .chains import Episode

            likely = self.model.classifier.classify(
                Episode(event.node, tuple(buf))
            ).value
        return FailureWarning(
            node=event.node,
            decision_time=event.timestamp,
            lead_seconds=lead,
            mse=mse,
            likely_class=likely,
        )

    def run(self, records: Iterable[LogRecord]) -> Iterator[FailureWarning]:
        """Generator form: yield warnings while replaying a record feed."""
        for record in records:
            warning = self.feed(record)
            if warning is not None:
                yield warning

    # ------------------------------------------------------------------
    def pending_nodes(self) -> list[CrayNodeId]:
        """Nodes with an open (non-empty) anomalous episode."""
        return [node for node, buf in self._buffers.items() if buf]

    def reset(self) -> None:
        """Clear all per-node state (e.g. after a maintenance window)."""
        self._buffers.clear()
        self._alerted.clear()
