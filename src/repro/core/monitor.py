"""Streaming failure monitor: online scoring over a live record feed.

The paper evaluates offline ("the training phases 1 and 2 are performed
offline"), but its motivation is operational: warn *before* the node
dies so jobs can be migrated.  :class:`StreamingMonitor` provides that
deployment surface over a trained model — it consumes raw log records
in timestamp order, maintains per-node episode buffers, scores each
growing episode with the phase-3 online mode, and emits one
:class:`~repro.core.alerts.FailureWarning` per matched episode.

The per-episode single-alert rule mirrors real alerting practice: once a
node is flagged, further events of the same episode do not re-alert;
the buffer closes when the episode ends (terminal seen — closed
eagerly — or the inter-event gap exceeds the episode window).

The monitor is hardened for unattended production use:

* per-node episode buffers are **bounded** (oldest events dropped) and
  the node table is **LRU-evicted** at a configurable capacity, so a
  cluster-wide event storm cannot grow memory without bound;
* a scoring failure on one node's episode degrades to a **counted
  skip** instead of killing the feed loop — one poisoned episode must
  not take down the monitor for every other node;
* raw lines can be fed directly through the hardened ingest front-end
  (:meth:`feed_line` / :meth:`run_lines`), which quarantines
  unparseable input against an error budget;
* :meth:`health` returns a stats snapshot for operator dashboards,
  including a coarse ``status`` that transitions healthy → degraded on
  a scoring failure and degraded → recovered after a configurable run
  of successful scorings;
* the serving layer can force the monitor into **degraded mode**
  (:attr:`degraded_mode`), in which events are still buffered but
  scoring is skipped — the path a tripped circuit breaker routes
  through — and can snapshot/restore the complete mutable state
  (:meth:`state_dict` / :meth:`load_state_dict`) for bit-identical
  checkpoint resume.

Feeding is **batch-major**: :meth:`feed_batch` accumulates a batch of
records' pending per-node updates and flushes them through *one* batched
LSTM forward (:meth:`Phase3Predictor.score_partial_batch`) instead of
one forward per record.  :meth:`feed` is the batch of one.  The batched
flush is engineered to be observably identical to sequential feeding —
same scores bit for bit, same warning order, same counters, same health
transitions, same ``state_dict`` — see the module's flush notes below.

Flush design: buffer mutations (LRU touch/evict, gap close, event-cap
drop, append, eager terminal close) are applied immediately at submit
time, because a record's buffer snapshot depends only on *earlier*
records — exactly as in sequential feeding.  Mutations of the per-node
alert latch and the health-status machine are *deferred* into an ordered
operation list replayed at flush time, because a latch add depends on a
scoring outcome.  Which units to score is decided with a "surely
latched" preview set (the latch set with only the batch's discards
applied): a node already latched under discards-only stays latched under
any interleaving of adds, so it is provably skipped; every other unit is
scored speculatively in the batched forward and its result dropped at
replay if an earlier record's flag latched the node first.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Optional, Sequence

from ..errors import ConfigError, IngestError, PredictionError
from ..events import Label, ParsedEvent
from ..obs import metrics_registry
from ..simlog.record import LogRecord
from ..topology.cray import CrayNodeId
from .alerts import FailureWarning
from .desh import DeshModel

__all__ = ["FeedOutcome", "StreamingMonitor", "MonitorHealth"]


@dataclass(frozen=True)
class MonitorHealth:
    """Point-in-time stats snapshot of a :class:`StreamingMonitor`.

    ``status`` is the coarse operator-facing state: ``"healthy"`` until
    the first scoring failure, ``"degraded"`` while failures are recent,
    and ``"recovered"`` once ``recovery_successes`` consecutive scorings
    have succeeded after the last failure.
    """

    records_seen: int
    warnings_raised: int
    open_episodes: int
    tracked_nodes: int
    degraded_skips: int
    events_evicted: int
    nodes_evicted: int
    episodes_closed: int
    ingest: "dict | None" = field(default=None)
    status: str = "healthy"
    scores_attempted: int = 0

    def as_dict(self) -> dict:
        """The snapshot as a plain dict (for JSON dashboards)."""
        out = {
            "status": self.status,
            "records_seen": self.records_seen,
            "warnings_raised": self.warnings_raised,
            "open_episodes": self.open_episodes,
            "tracked_nodes": self.tracked_nodes,
            "degraded_skips": self.degraded_skips,
            "scores_attempted": self.scores_attempted,
            "events_evicted": self.events_evicted,
            "nodes_evicted": self.nodes_evicted,
            "episodes_closed": self.episodes_closed,
        }
        if self.ingest is not None:
            out["ingest"] = self.ingest
        return out


@dataclass(frozen=True)
class FeedOutcome:
    """Per-record result of a batched feed.

    ``attempted`` mirrors the sequential path's ``scores_attempted``
    increment for this record, ``skipped`` its ``degraded_skips``
    increment; the serving layer replays circuit-breaker bookkeeping
    from these instead of diffing monitor counters around each call.
    ``ingest_error`` is set (and the record not fed) when the raw-line
    path quarantined the line past its error budget.
    """

    warning: Optional[FailureWarning] = None
    attempted: bool = False
    skipped: bool = False
    ingest_error: Optional[IngestError] = None


class StreamingMonitor:
    """Per-node streaming episode tracker over a trained Desh model.

    Parameters
    ----------
    model:
        The trained :class:`~repro.core.desh.DeshModel` to score with.
    episode_gap:
        Inter-event gap (seconds) that closes an episode.
    max_nodes:
        Capacity of the per-node buffer table; the least recently active
        node is evicted when a new node would exceed it.
    max_events_per_node:
        Cap on one node's open episode buffer; the oldest buffered event
        is dropped to admit a new one.
    ingest_config:
        Optional :class:`~repro.resilience.IngestConfig` for the
        raw-line path (:meth:`feed_line` / :meth:`run_lines`).
    recovery_successes:
        Consecutive successful scorings after a failure before the
        health status flips from ``"degraded"`` to ``"recovered"``.
    """

    def __init__(
        self,
        model: DeshModel,
        *,
        episode_gap: float = 600.0,
        max_nodes: int = 4096,
        max_events_per_node: int = 512,
        ingest_config=None,
        recovery_successes: int = 3,
    ) -> None:
        if max_nodes < 1:
            raise ConfigError(f"max_nodes must be >= 1, got {max_nodes}")
        if max_events_per_node < 2:
            raise ConfigError(
                f"max_events_per_node must be >= 2, got {max_events_per_node}"
            )
        if recovery_successes < 1:
            raise ConfigError(
                f"recovery_successes must be >= 1, got {recovery_successes}"
            )
        self.model = model
        self.gap = episode_gap
        self.max_nodes = max_nodes
        self.max_events_per_node = max_events_per_node
        self.recovery_successes = recovery_successes
        self._buffers: "OrderedDict[CrayNodeId, list[ParsedEvent]]" = OrderedDict()
        self._alerted: set[CrayNodeId] = set()
        self._ingestor = None
        self._ingest_config = ingest_config
        self.records_seen = 0
        self.warnings_raised = 0
        self.degraded_skips = 0
        self.scores_attempted = 0
        self.events_evicted = 0
        self.nodes_evicted = 0
        self.episodes_closed = 0
        self.degraded_mode = False
        self._status = "healthy"
        self._successes_since_skip = 0

    # ------------------------------------------------------------------
    def feed(self, record: LogRecord) -> Optional[FailureWarning]:
        """Consume one record; returns a warning when a flag fires.

        Safe-labeled, out-of-vocabulary and system-level records never
        alert.  A node alerts at most once per episode.  A per-node
        scoring failure (:class:`~repro.errors.PredictionError`) is
        converted into a counted degraded-mode skip — the monitor keeps
        serving every other node.

        This is the batch of one: all semantics live in
        :meth:`feed_batch`, so single-record and batched feeding cannot
        drift apart.
        """
        return self.feed_batch([record])[0].warning

    def feed_batch(self, records: "Sequence[LogRecord]") -> "list[FeedOutcome]":
        """Consume a batch of records through one batched scoring flush.

        Observably identical to calling :meth:`feed` on each record in
        order (same warnings, counters, buffers, latches, and health
        transitions — scores bit for bit), but all scoreable pending
        updates run through a single
        :meth:`~repro.core.phase3.Phase3Predictor.score_partial_batch`
        forward.  See the module docstring for the submit/replay design.
        """
        registry = metrics_registry()
        outcomes: "list[FeedOutcome]" = [FeedOutcome()] * len(records)
        # Deferred alert-latch / health-machine operations, in record
        # order.  Forms: ("discard", node), ("skip",), ("latched",),
        # and ("score", outcome_index, node, event, snapshot, unit_index).
        ops: "list[tuple]" = []
        units: "list[tuple[ParsedEvent, ...]]" = []
        # The latch set as it would look with only this batch's discards
        # applied — the provably-still-latched preview (adds only ever
        # grow the set, so membership here means a guaranteed skip).
        preview = set(self._alerted)
        for index, record in enumerate(records):
            self.records_seen += 1
            registry.counter("monitor.records").inc()
            event = self.model.parser.encode(record)
            if event is None or event.node is None or event.label == Label.SAFE:
                continue
            node = event.node
            buf, evicted = self._touch(node)
            for cold in evicted:
                ops.append(("discard", cold))
                preview.discard(cold)
            if buf and event.timestamp - buf[-1].timestamp > self.gap:
                buf.clear()
                ops.append(("discard", node))
                preview.discard(node)
                self.episodes_closed += 1
            if len(buf) >= self.max_events_per_node:
                del buf[0]
                self.events_evicted += 1
            buf.append(event)
            if self.degraded_mode:
                # Forced degraded path (tripped circuit breaker): keep
                # buffering so episodes stay warm, but skip scoring.
                self.degraded_skips += 1
                registry.counter("monitor.degraded_skips").inc()
                ops.append(("skip",))
                outcomes[index] = FeedOutcome(skipped=True)
            else:
                self.scores_attempted += 1
                outcomes[index] = FeedOutcome(attempted=True)
                if node in preview:
                    # Latched even before any of this batch's flags can
                    # land: the sequential path would early-return from
                    # its alert check and note a success.
                    ops.append(("latched",))
                else:
                    ops.append(("score", index, node, event, tuple(buf), len(units)))
                    units.append(tuple(buf))
            if event.terminal:
                # Close terminal episodes eagerly: the node went down, so
                # its next record necessarily starts a fresh episode, and
                # pending_nodes() must not report the dead episode as open.
                self._buffers.pop(node, None)
                ops.append(("discard", node))
                preview.discard(node)
                self.episodes_closed += 1
        if units:
            scores = self.model.predictor.score_partial_batch(units)
        else:
            scores = []
        for op in ops:
            kind = op[0]
            if kind == "discard":
                self._alerted.discard(op[1])
            elif kind == "skip":
                self._note_skip()
            elif kind == "latched":
                self._note_success()
            else:
                index, node, event, snapshot, unit_index = op[1:]
                if node in self._alerted:
                    # An earlier record in this batch latched the node
                    # first; its speculative score is dropped, exactly
                    # like the sequential early return.
                    self._note_success()
                    continue
                result = scores[unit_index]
                if result.error is not None:
                    self.degraded_skips += 1
                    registry.counter("monitor.degraded_skips").inc()
                    self._note_skip()
                    outcomes[index] = FeedOutcome(attempted=True, skipped=True)
                    continue
                try:
                    warning = None
                    if result.flagged:
                        self._alerted.add(node)
                        self.warnings_raised += 1
                        registry.counter("monitor.warnings").inc()
                        likely = None
                        if self.model.classifier is not None:
                            from .chains import Episode

                            likely = self.model.classifier.classify(
                                Episode(node, snapshot)
                            ).value
                        warning = FailureWarning(
                            node=node,
                            decision_time=event.timestamp,
                            lead_seconds=result.lead_seconds,
                            mse=result.mse,
                            likely_class=likely,
                        )
                except PredictionError:
                    self.degraded_skips += 1
                    registry.counter("monitor.degraded_skips").inc()
                    self._note_skip()
                    outcomes[index] = FeedOutcome(attempted=True, skipped=True)
                else:
                    self._note_success()
                    if warning is not None:
                        outcomes[index] = FeedOutcome(
                            warning=warning, attempted=True
                        )
        return outcomes

    def _note_skip(self) -> None:
        """A scoring opportunity was skipped: enter the degraded status."""
        self._status = "degraded"
        self._successes_since_skip = 0

    def _note_success(self) -> None:
        """A scoring attempt succeeded: progress toward recovery."""
        if self._status == "degraded":
            self._successes_since_skip += 1
            if self._successes_since_skip >= self.recovery_successes:
                self._status = "recovered"

    @property
    def status(self) -> str:
        """Coarse health state: ``healthy`` / ``degraded`` / ``recovered``."""
        return self._status

    def _touch(
        self, node: CrayNodeId
    ) -> "tuple[list[ParsedEvent], list[CrayNodeId]]":
        """LRU-access *node*'s buffer, evicting the coldest at capacity.

        Returns the buffer and the evicted nodes; the caller owns the
        corresponding alert-latch discards (they are replayed in record
        order by the batched flush).
        """
        evicted: "list[CrayNodeId]" = []
        buf = self._buffers.get(node)
        if buf is None:
            while len(self._buffers) >= self.max_nodes:
                cold, _ = self._buffers.popitem(last=False)
                evicted.append(cold)
                self.nodes_evicted += 1
            buf = self._buffers[node] = []
        else:
            self._buffers.move_to_end(node)
        return buf, evicted

    def run(
        self, records: Iterable[LogRecord], *, batch_size: int = 64
    ) -> Iterator[FailureWarning]:
        """Generator form: yield warnings while replaying a record feed.

        Records are fed in batches of *batch_size* (each batch one
        batched scoring flush); warnings come out in the same order as
        sequential feeding, in per-batch bursts.
        """
        if batch_size < 1:
            raise ConfigError(f"batch_size must be >= 1, got {batch_size}")
        batch: "list[LogRecord]" = []
        for record in records:
            batch.append(record)
            if len(batch) >= batch_size:
                for outcome in self.feed_batch(batch):
                    if outcome.warning is not None:
                        yield outcome.warning
                batch = []
        if batch:
            for outcome in self.feed_batch(batch):
                if outcome.warning is not None:
                    yield outcome.warning

    # ------------------------------------------------------------------
    # raw-line path (hardened ingest front-end)
    # ------------------------------------------------------------------
    def _get_ingestor(self):
        if self._ingestor is None:
            from ..resilience.ingest import HardenedIngestor

            self._ingestor = HardenedIngestor(self._ingest_config)
        return self._ingestor

    def feed_line(self, line: str) -> Optional[FailureWarning]:
        """Consume one *raw* log line through the hardened ingest path.

        Unparseable lines are quarantined (raising
        :class:`~repro.errors.IngestError` only past the configured
        error budget) and duplicates within the dedup window dropped;
        surviving records go through :meth:`feed`.
        """
        record = self._get_ingestor().accept_line(line)
        if record is None:
            return None
        return self.feed(record)

    def feed_line_batch(self, lines: "Sequence[str]") -> "list[FeedOutcome]":
        """Consume raw lines through ingest plus one batched feed.

        Equivalent to :meth:`feed_line` per line, except an over-budget
        line is reported in its outcome's ``ingest_error`` instead of
        raising, so one poisoned line does not abort the whole batch —
        the caller decides (the serving shards count it and move on).
        Ingest runs strictly in line order (dedup windows are
        order-sensitive); surviving records flush through
        :meth:`feed_batch`.
        """
        outcomes: "list[Optional[FeedOutcome]]" = [None] * len(lines)
        records: "list[LogRecord]" = []
        fed_indices: "list[int]" = []
        ingestor = self._get_ingestor()
        for index, line in enumerate(lines):
            try:
                record = ingestor.accept_line(line)
            except IngestError as exc:
                outcomes[index] = FeedOutcome(ingest_error=exc)
                continue
            if record is None:
                outcomes[index] = FeedOutcome()
                continue
            records.append(record)
            fed_indices.append(index)
        for index, outcome in zip(fed_indices, self.feed_batch(records)):
            outcomes[index] = outcome
        return outcomes

    def run_lines(
        self, lines: Iterable[str], *, batch_size: int = 64
    ) -> Iterator[FailureWarning]:
        """Replay a raw-line feed in batches; yields warnings in order.

        Unlike :meth:`feed_line`, over-budget ingest errors abort the
        replay by re-raising (matching the sequential generator's
        behavior of propagating :class:`~repro.errors.IngestError`).
        """
        if batch_size < 1:
            raise ConfigError(f"batch_size must be >= 1, got {batch_size}")

        def flush(batch: "list[str]") -> Iterator[FailureWarning]:
            for outcome in self.feed_line_batch(batch):
                if outcome.ingest_error is not None:
                    raise outcome.ingest_error
                if outcome.warning is not None:
                    yield outcome.warning

        batch: "list[str]" = []
        for line in lines:
            batch.append(line)
            if len(batch) >= batch_size:
                yield from flush(batch)
                batch = []
        if batch:
            yield from flush(batch)

    # ------------------------------------------------------------------
    def health(self) -> MonitorHealth:
        """Stats snapshot: counters, open state, and ingest accounting."""
        ingest = (
            self._ingestor.stats.as_dict() if self._ingestor is not None else None
        )
        return MonitorHealth(
            records_seen=self.records_seen,
            warnings_raised=self.warnings_raised,
            open_episodes=sum(1 for buf in self._buffers.values() if buf),
            tracked_nodes=len(self._buffers),
            degraded_skips=self.degraded_skips,
            events_evicted=self.events_evicted,
            nodes_evicted=self.nodes_evicted,
            episodes_closed=self.episodes_closed,
            ingest=ingest,
            status=self._status,
            scores_attempted=self.scores_attempted,
        )

    def pending_nodes(self) -> list[CrayNodeId]:
        """Nodes with an open (non-empty) anomalous episode."""
        return [node for node, buf in self._buffers.items() if buf]

    def open_episode(self, node: CrayNodeId) -> tuple[ParsedEvent, ...]:
        """The node's currently buffered episode (empty when untracked)."""
        buf = self._buffers.get(node)
        return tuple(buf) if buf else ()

    def has_alerted(self, node: CrayNodeId) -> bool:
        """Whether *node*'s open episode has already raised its warning."""
        return node in self._alerted

    def reset(self) -> None:
        """Clear all per-node state (e.g. after a maintenance window)."""
        self._buffers.clear()
        self._alerted.clear()
        if self._ingestor is not None:
            self._ingestor.reset()

    # ------------------------------------------------------------------
    # checkpointable state (service graceful-shutdown / resume path)
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """The complete mutable state as a JSON-serializable dict.

        Captures counters, the per-node buffers *in LRU order*, the
        per-episode alert latches, the health-status machine and — when
        the raw-line path has been used — the hardened ingestor's stats
        and dedup window, so :meth:`load_state_dict` resumes a feed
        bit-identically.
        """
        buffers = [
            [str(node), [_event_state(e) for e in buf]]
            for node, buf in self._buffers.items()
        ]
        return {
            "version": 1,
            "records_seen": self.records_seen,
            "warnings_raised": self.warnings_raised,
            "degraded_skips": self.degraded_skips,
            "scores_attempted": self.scores_attempted,
            "events_evicted": self.events_evicted,
            "nodes_evicted": self.nodes_evicted,
            "episodes_closed": self.episodes_closed,
            "status": self._status,
            "successes_since_skip": self._successes_since_skip,
            "buffers": buffers,
            "alerted": sorted(str(node) for node in self._alerted),
            "ingest": (
                self._ingestor.state_dict()
                if self._ingestor is not None
                else None
            ),
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot in place."""
        version = state.get("version")
        if version != 1:
            raise ConfigError(
                f"unsupported monitor state version {version!r} (expected 1)"
            )
        self.reset()
        self.records_seen = int(state["records_seen"])
        self.warnings_raised = int(state["warnings_raised"])
        self.degraded_skips = int(state["degraded_skips"])
        self.scores_attempted = int(state["scores_attempted"])
        self.events_evicted = int(state["events_evicted"])
        self.nodes_evicted = int(state["nodes_evicted"])
        self.episodes_closed = int(state["episodes_closed"])
        self._status = str(state["status"])
        self._successes_since_skip = int(state["successes_since_skip"])
        for node_text, events in state["buffers"]:
            node = CrayNodeId.parse(node_text)
            self._buffers[node] = [_event_from_state(s) for s in events]
        self._alerted = {CrayNodeId.parse(text) for text in state["alerted"]}
        if state.get("ingest") is not None:
            self._get_ingestor().load_state_dict(state["ingest"])


def _event_state(event: ParsedEvent) -> list:
    """Serialize one buffered event (inverse of :func:`_event_from_state`)."""
    return [
        event.timestamp,
        event.phrase_id,
        str(event.node) if event.node is not None else None,
        event.label,
        event.terminal,
    ]


def _event_from_state(state: list) -> ParsedEvent:
    """Rebuild one buffered event from its serialized form."""
    timestamp, phrase_id, node_text, label, terminal = state
    return ParsedEvent(
        timestamp=float(timestamp),
        phrase_id=int(phrase_id),
        node=CrayNodeId.parse(node_text) if node_text is not None else None,
        label=str(label),
        terminal=bool(terminal),
    )
