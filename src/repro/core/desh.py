"""The Desh facade: fit on raw training logs, predict node failures.

Ties the full pipeline together (Figure 2)::

    raw lines -> LogParser -> Phase1 (embeddings + phrase LSTM + chains)
              -> Phase2 ((dT, phrase) regressor)
              -> Phase3 (per-node episode scoring) -> FailureWarnings

Typical use::

    from repro import Desh, DeshConfig
    desh = Desh(DeshConfig())
    model = desh.fit(train_records)
    warnings = model.warn(test_records)
    for w in warnings:
        print(w.message())
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from ..config import DeshConfig
from ..errors import NotFittedError, TrainingError
from ..parsing.pipeline import LogParser, ParseResult
from ..simlog.record import LogRecord
from .alerts import FailureWarning
from .chains import ChainExtractor
from .classify import FailureClassifier
from .phase1 import Phase1Result
from .phase2 import Phase2Result, Phase2Trainer  # noqa: F401 (update() uses both)
from .phase3 import EpisodeVerdict, FailurePrediction, Phase3Predictor

__all__ = ["Desh", "DeshModel"]


@dataclass
class DeshModel:
    """A fully trained Desh pipeline, ready for inference."""

    config: DeshConfig
    parser: LogParser
    phase1: Phase1Result
    phase2: Phase2Result
    predictor: Phase3Predictor
    classifier: "FailureClassifier | None" = None

    # ------------------------------------------------------------------
    def parse(self, records: Iterable[LogRecord]) -> ParseResult:
        """Encode raw test records with the trained parser."""
        return self.parser.transform(records)

    def score(
        self, records: Iterable[LogRecord], *, workers: int = 1
    ) -> list[EpisodeVerdict]:
        """Segment and score every per-node episode in *records*.

        ``workers > 1`` shards the per-node sequences and scores them on
        a thread pool (NumPy releases the GIL inside BLAS); results are
        identical to the serial path, in a deterministic order.
        """
        parsed = self.parse(records)
        sequences = [
            seq for seq in parsed.by_node().values() if seq.node is not None
        ]
        return self.score_sequences(sequences, workers=workers)

    def score_sequences(
        self, sequences: Sequence, *, workers: int = 1
    ) -> list[EpisodeVerdict]:
        """Score already-encoded per-node sequences (cache-friendly path).

        Callers that hold a pre-parsed event stream — e.g. an evaluation
        sweep reusing a cached ``ParseResult`` — can skip re-parsing and
        feed its ``by_node()`` sequences here directly.
        """
        if workers <= 1 or len(sequences) <= 1:
            return self.predictor.predict_sequences(sequences)
        from ..parallel import ordered_parallel_map, shard_sequences

        shards = shard_sequences(sequences, workers)
        chunks = ordered_parallel_map(
            self.predictor.predict_sequences, shards, max_workers=workers
        )
        return [v for chunk in chunks for v in chunk]

    def predict(self, records: Iterable[LogRecord]) -> list[FailurePrediction]:
        """The raised failure flags for *records*."""
        return self.predictor.predictions(self.score(records))

    def warn(self, records: Iterable[LogRecord]) -> list[FailureWarning]:
        """Operator-facing warnings, one per raised flag.

        When the model carries a failure classifier, every warning also
        names the likely Table-7 failure class ("likely MCE").
        """
        warnings: list[FailureWarning] = []
        for verdict in self.score(records):
            if not verdict.flagged:
                continue
            likely = None
            if self.classifier is not None:
                likely = self.classifier.classify(verdict.episode).value
            warnings.append(
                FailureWarning(
                    node=verdict.node,
                    decision_time=verdict.decision_time,
                    lead_seconds=verdict.lead_seconds,
                    mse=verdict.mse,
                    likely_class=likely,
                )
            )
        return warnings

    # ------------------------------------------------------------------
    def update(
        self, records: Sequence[LogRecord], *, epochs: int = 60
    ) -> int:
        """Incrementally learn from newly observed records (extension).

        Table 11 notes DeepLog performs online model updates while the
        published Desh does not; this closes the gap: failure chains are
        extracted from the new records with the *existing* vocabulary,
        appended to the chain store, and the phase-2 regressor continues
        training on the combined window set for a few epochs (RMSprop
        state is fresh, weights are warm).

        Returns the number of newly learned chains (0 leaves the model
        untouched).
        """
        from ..nn.optimizers import RMSprop
        import numpy as np

        parsed = self.parser.transform(records)
        sequences = [
            seq for seq in parsed.by_node().values() if seq.node is not None
        ]
        extractor = ChainExtractor(lookback=self.config.phase2.max_lead_seconds)
        new_chains = extractor.extract(sequences)
        if not new_chains:
            return 0
        self.phase1.chains.extend(new_chains)
        trainer = Phase2Trainer(
            vocab_size=self.phase2.scaler.vocab_size,
            config=self.config.phase2,
            seed=self.config.seed,
            model=self.config.model,
            model_params=self.config.model_params,
        )
        x, y = trainer.build_windows(self.phase1.chains)
        cfg = self.config.phase2
        self.phase2.regressor.fit(
            x,
            y,
            epochs=epochs,
            batch_size=cfg.batch_size,
            optimizer=RMSprop(cfg.learning_rate, rho=cfg.rho),
            grad_clip=cfg.grad_clip,
            rng=np.random.default_rng(self.config.seed + 11),
        )
        self.phase2.num_chains = len(self.phase1.chains)
        self.phase2.num_windows = len(x)
        return len(new_chains)

    # ------------------------------------------------------------------
    def save(self, directory) -> None:
        """Persist the complete model (every trained component).

        Unlike the legacy ``cli.save_model`` — which kept only the
        phase-2 regressor and vocabulary — a directory written here
        restores via :meth:`load` to a model whose ``warn()`` output is
        identical, classifier and online ``update()`` included.
        """
        from ..pipeline.persist import save_model

        save_model(self, directory)

    @classmethod
    def load(cls, directory) -> "DeshModel":
        """Restore a complete model saved by :meth:`save`."""
        from ..pipeline.persist import load_model

        return load_model(directory)

    # ------------------------------------------------------------------
    @property
    def num_phrases(self) -> int:
        """Size of the mined phrase vocabulary."""
        return self.parser.num_phrases

    @property
    def num_chains(self) -> int:
        """Number of failure chains the model has learned."""
        return self.phase1.num_chains


class Desh:
    """Trainer entry point configuring all three phases."""

    def __init__(self, config: DeshConfig | None = None) -> None:
        self.config = config if config is not None else DeshConfig()

    def fit(
        self,
        records: Sequence[LogRecord],
        *,
        train_classifier: bool = True,
        checkpoint_dir: "str | None" = None,
        cache_dir: "str | None" = None,
    ) -> DeshModel:
        """Train the full pipeline on raw training records.

        Training runs through the staged pipeline
        (:class:`repro.pipeline.DeshPipeline`): parse → embeddings /
        chains → phase-1 LSTM / phase-2 regressor → classifier /
        phase-3 spec.  Each stage reuses exactly the trainer code (and
        seeds) of the original monolithic implementation, so the
        returned model is bit-identical to the pre-pipeline ``fit``.

        ``train_classifier=False`` skips the phase-1 LSTM (embeddings and
        chains are still built); useful when only lead-time prediction is
        being evaluated.

        ``checkpoint_dir`` enables crash-safe training: both LSTM fits
        write atomic per-epoch checkpoints under ``<dir>/phase1`` and
        ``<dir>/phase2``, and a re-run of the same ``fit`` call resumes
        from the newest intact checkpoint to bit-identical weights (the
        parser, embeddings and chain extraction are deterministic given
        the config seed, so they are simply recomputed).

        ``cache_dir`` enables the content-addressed artifact store:
        stage outputs are persisted under fingerprints derived from the
        config, the upstream stages and the training data, and a
        re-``fit`` with a partially changed config re-runs only the
        invalidated stages (e.g. a Phase-2 edit skips parsing, the
        embeddings and the phase-1 LSTM entirely).
        """
        if not records:
            raise TrainingError("Desh.fit received no records")
        from ..pipeline.facade import DeshPipeline

        return DeshPipeline(
            self.config,
            train_classifier=train_classifier,
            cache_dir=cache_dir,
            checkpoint_dir=checkpoint_dir,
        ).fit(records)
