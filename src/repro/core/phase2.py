"""Phase 2: re-train chain recognition augmented with lead times.

"In this phase, we segregate the phrases forming the failure chains from
the rest, and compute the time differences between phrases in the
failure chain to enable lead time prediction" (Section 3.2).

Each failure chain from phase 1 becomes a sequence of normalized
(dT, phrase) 2-state vectors (Table 4); sliding windows of history 5
train a stacked-LSTM regressor to 1-step-predict the next vector, with
MSE loss and the RMSprop optimizer (Table 5).  Chains shorter than
``history + 1`` samples are *left-padded* by replicating their first
vector so short chains (e.g. kernel panics with 3-4 messages) still
contribute windows — without padding the Panic class would be
untrainable and undetectable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from ..config import Phase2Config
from ..errors import TrainingError
from ..nn.data import sliding_windows_continuous
from ..nn.model import SequenceRegressor
from ..nn.optimizers import RMSprop
from .chains import FailureChain
from .deltas import LeadTimeScaler

__all__ = ["Phase2Trainer", "Phase2Result", "pad_vectors"]


def pad_vectors(vectors: np.ndarray, min_length: int) -> np.ndarray:
    """Left-pad a ``(T, D)`` vector sequence to *min_length* rows.

    Padding replicates the first row, i.e. the chain "holds" at its first
    observation — a neutral extension that adds no fictitious dynamics.
    """
    if vectors.ndim != 2:
        raise TrainingError(f"vectors must be 2-D, got shape {vectors.shape}")
    t = len(vectors)
    if t >= min_length:
        return vectors
    pad = np.repeat(vectors[:1], min_length - t, axis=0)
    return np.concatenate([pad, vectors], axis=0)


@dataclass
class Phase2Result:
    """Artifacts of phase-2 training."""

    regressor: SequenceRegressor
    scaler: LeadTimeScaler
    num_chains: int
    num_windows: int
    losses: list[float] = field(default_factory=list)


class Phase2Trainer:
    """Train the (dT, phrase) lead-time regressor on failure chains."""

    def __init__(
        self,
        vocab_size: int,
        *,
        config: Phase2Config | None = None,
        seed: int = 0,
        model: str = "lstm",
        model_params: Mapping[str, object] | None = None,
    ) -> None:
        if vocab_size < 2:
            raise TrainingError(f"vocab_size must be >= 2, got {vocab_size}")
        self.vocab_size = vocab_size
        self.config = config if config is not None else Phase2Config()
        self.seed = seed
        self.model = model
        self.model_params = dict(model_params or {})
        self.scaler = LeadTimeScaler(
            max_lead_seconds=self.config.max_lead_seconds, vocab_size=vocab_size
        )

    # ------------------------------------------------------------------
    def chain_vectors(self, chain: FailureChain) -> np.ndarray:
        """Normalized (dT, phrase) vectors of one chain, left-padded.

        Every chain is left-padded by ``history`` replicated first rows so
        a training window exists for *every* real event — including the
        earliest chain events, whose windows are mostly padding.  Phase 3
        uses the identical padding, which is what lets a flag be raised
        after observing only the first couple of anomalous events (the
        long-lead-time regime of Figure 8).
        """
        vectors = self.scaler.encode_chain(chain.timestamps(), chain.phrase_ids())
        return pad_vectors(vectors, len(vectors) + self.config.history_size)

    def build_windows(
        self, chains: Sequence[FailureChain]
    ) -> tuple[np.ndarray, np.ndarray]:
        """Training windows over every chain: ``(N, H, 2)`` and ``(N, 2)``.

        Besides the clean windows, ``augment_copies`` corrupted copies are
        appended per chain (input rows randomly replaced with noise
        vectors, targets untouched) so the regressor tolerates ambient
        anomalies interleaved with real chains.
        """
        if not chains:
            raise TrainingError("phase 2 received no failure chains")
        cfg = self.config
        rng = np.random.default_rng(self.seed + 7)
        xs, ys = [], []
        for chain in chains:
            vecs = self.chain_vectors(chain)
            x, y = sliding_windows_continuous(vecs, cfg.history_size, 1)
            if not len(x):
                continue
            xs.append(x)
            ys.append(y[:, 0, :])
            for _ in range(cfg.augment_copies):
                if cfg.corrupt_prob <= 0:
                    break
                xa = x.copy()
                mask = rng.random(xa.shape[:2]) < cfg.corrupt_prob
                noise = np.empty((int(mask.sum()), 2))
                noise[:, 0] = rng.random(len(noise))
                noise[:, 1] = (
                    rng.integers(0, self.vocab_size, len(noise))
                    / self.vocab_size
                    * self.scaler.id_scale
                )
                xa[mask] = noise
                xs.append(xa)
                ys.append(y[:, 0, :])
        if not xs:
            raise TrainingError("no phase-2 windows could be formed")
        return np.concatenate(xs, axis=0), np.concatenate(ys, axis=0)

    # ------------------------------------------------------------------
    def train(
        self, chains: Sequence[FailureChain], *, checkpoint=None
    ) -> Phase2Result:
        """Fit the regressor on all chains' delta-vector windows.

        ``checkpoint`` (a :class:`~repro.resilience.CheckpointManager`)
        makes the regressor fit resumable at epoch granularity; window
        construction is deterministic given the seed and recomputed on
        resume.
        """
        cfg = self.config
        x, y = self.build_windows(chains)
        regressor = SequenceRegressor(
            2,
            output_dim=2,
            hidden_size=cfg.hidden_size,
            num_layers=cfg.hidden_layers,
            seed=self.seed,
            backbone=self.model,
            backbone_params=self.model_params,
        )
        losses = regressor.fit(
            x,
            y,
            epochs=cfg.epochs,
            batch_size=cfg.batch_size,
            optimizer=RMSprop(cfg.learning_rate, rho=cfg.rho),
            grad_clip=cfg.grad_clip,
            rng=np.random.default_rng(self.seed + 2),
            checkpoint=checkpoint,
        )
        return Phase2Result(
            regressor=regressor,
            scaler=self.scaler,
            num_chains=len(chains),
            num_windows=len(x),
            losses=losses,
        )
