"""Deterministic random-number stream management.

Each subsystem (log generation, embedding training, LSTM initialization,
...) receives its own independent :class:`numpy.random.Generator` derived
from a single root seed via :class:`numpy.random.SeedSequence` spawning.
This makes every experiment reproducible bit-for-bit while keeping the
streams statistically independent, and lets a subsystem be re-run in
isolation without perturbing the draws of the others.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from .errors import ConfigError

__all__ = ["RngFactory", "generator", "derive_seed"]


def generator(seed: int | None = None) -> np.random.Generator:
    """Return a fresh :class:`numpy.random.Generator` seeded with *seed*."""
    return np.random.default_rng(seed)


def derive_seed(root_seed: int, *path: str) -> int:
    """Derive a stable 63-bit child seed from *root_seed* and a label path.

    The same ``(root_seed, path)`` always yields the same child seed, and
    distinct paths yield independent seeds with overwhelming probability.
    """
    # Hash the path into entropy words; SeedSequence mixes them soundly.
    words = [root_seed & 0xFFFFFFFF, (root_seed >> 32) & 0xFFFFFFFF]
    for label in path:
        acc = 2166136261
        for ch in label.encode("utf-8"):
            acc = ((acc ^ ch) * 16777619) & 0xFFFFFFFF
        words.append(acc)
    ss = np.random.SeedSequence(words)
    return int(ss.generate_state(1, dtype=np.uint64)[0] & 0x7FFFFFFFFFFFFFFF)


class RngFactory:
    """Spawns named, independent random generators from one root seed.

    Examples
    --------
    >>> f = RngFactory(1234)
    >>> g1 = f.get("simlog")
    >>> g2 = f.get("lstm-init")
    >>> f2 = RngFactory(1234)
    >>> all(f2.get("simlog").integers(0, 1 << 30, 8) == g1.integers(0, 1 << 30, 8))
    False

    (Each ``get`` call returns a *fresh* generator positioned at the start
    of its stream, so the comparison above re-draws from the beginning.)
    """

    def __init__(self, root_seed: int = 0):
        if not isinstance(root_seed, (int, np.integer)):
            raise ConfigError(
                f"root_seed must be an int, got {type(root_seed).__name__}"
            )
        self.root_seed = int(root_seed)

    def seed_for(self, *path: str) -> int:
        """Return the deterministic child seed for a label path."""
        return derive_seed(self.root_seed, *path)

    def get(self, *path: str) -> np.random.Generator:
        """Return a fresh generator for the given label path."""
        return np.random.default_rng(self.seed_for(*path))

    def stream(self, *path: str) -> Iterator[np.random.Generator]:
        """Yield an unbounded sequence of independent generators.

        Useful when a subsystem needs one generator per work item (e.g. one
        per simulated node) without coordinating indices by hand.
        """
        i = 0
        while True:
            yield self.get(*path, f"#{i}")
            i += 1

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"RngFactory(root_seed={self.root_seed})"
