"""Raw log-file reading and writing (plain text or gzip).

Log files hold one syslog line per record in the
:func:`repro.simlog.record.render_line` format.  Reading is streaming —
records are yielded one at a time so multi-GB files never materialize in
memory (the paper's M1 log is 373GB).
"""

from __future__ import annotations

import gzip
from pathlib import Path
from typing import Callable, Iterable, Iterator

from ..errors import ParseError
from ..simlog.record import LogRecord, parse_line, render_line

__all__ = ["write_log", "read_records", "iter_lines"]


def _opener(path: Path) -> Callable:
    return gzip.open if path.suffix == ".gz" else open


def write_log(path: str | Path, records: Iterable[LogRecord]) -> int:
    """Write records as raw lines; returns the number written.

    A ``.gz`` suffix selects gzip compression.
    """
    path = Path(path)
    count = 0
    with _opener(path)(path, "wt") as fh:
        for record in records:
            fh.write(render_line(record))
            fh.write("\n")
            count += 1
    return count


def iter_lines(path: str | Path) -> Iterator[str]:
    """Stream the raw lines of a (possibly gzipped) log file.

    Blank and whitespace-only lines are skipped.  Invalid UTF-8 byte
    sequences are decoded with replacement characters instead of
    aborting the stream — a single mangled line must not kill a
    multi-GB replay; the replacement-riddled line then fails parsing
    downstream and is quarantined or skipped there.
    """
    path = Path(path)
    with _opener(path)(path, "rt", errors="replace") as fh:
        for line in fh:
            line = line.rstrip("\n")
            if line.strip():
                yield line


def read_records(
    path: str | Path, *, strict: bool = True, ingestor=None
) -> Iterator[LogRecord]:
    """Stream parsed records from a log file.

    With ``strict=False`` unparseable lines are skipped instead of
    raising — real log files contain truncated or corrupt lines.

    Passing a :class:`~repro.resilience.HardenedIngestor` as
    ``ingestor`` routes the lines through the hardened front-end
    instead: unparseable lines are quarantined against an error budget,
    exact duplicates are dropped, and mildly out-of-order records are
    re-sorted; the ingestor's ``stats`` and ``dead_letters`` carry the
    full accounting afterwards.
    """
    if ingestor is not None:
        yield from ingestor.ingest_lines(iter_lines(path))
        return
    for lineno, line in enumerate(iter_lines(path), start=1):
        try:
            yield parse_line(line)
        except ParseError:
            if strict:
                raise ParseError(f"{path}:{lineno}: unparseable line: {line!r}")
