"""Log-file IO and dataset management.

:mod:`~repro.io.logfile` reads/writes raw syslog files (plain or gzip)
as streams of :class:`~repro.simlog.record.LogRecord`;
:mod:`~repro.io.dataset` implements the paper's chronological 30/70
train/test split and ground-truth JSON round-tripping.
"""

from .logfile import write_log, read_records, iter_lines
from .dataset import chronological_split, save_ground_truth, load_ground_truth

__all__ = [
    "write_log",
    "read_records",
    "iter_lines",
    "chronological_split",
    "save_ground_truth",
    "load_ground_truth",
]
