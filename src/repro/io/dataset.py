"""Dataset splits and ground-truth persistence.

The paper's protocol: "We split the dataset for all the systems for
training and testing.  30% of the data is used for training and the
remaining is used for testing" (Section 4) — a chronological split, so
training never sees the future.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Sequence

from ..errors import DatasetError, SerializationError
from ..simlog.faults import FailureClass
from ..simlog.generator import (
    FailureEvent,
    GroundTruth,
    MaintenanceEvent,
    NearMissEvent,
)
from ..simlog.record import LogRecord
from ..topology.cray import CrayNodeId

__all__ = ["chronological_split", "save_ground_truth", "load_ground_truth"]


def chronological_split(
    records: Sequence[LogRecord], train_fraction: float
) -> tuple[list[LogRecord], list[LogRecord]]:
    """Split records at the *train_fraction* quantile of the time span.

    The cut is on wall-clock time (not record count) so both halves keep
    natural event densities.
    """
    if not 0.0 < train_fraction < 1.0:
        raise DatasetError(f"train_fraction must be in (0, 1), got {train_fraction}")
    if not records:
        raise DatasetError("cannot split an empty record list")
    ordered = sorted(records, key=lambda r: r.timestamp)
    t0 = ordered[0].timestamp
    t1 = ordered[-1].timestamp
    cut = t0 + (t1 - t0) * train_fraction
    train = [r for r in ordered if r.timestamp < cut]
    test = [r for r in ordered if r.timestamp >= cut]
    return train, test


# ----------------------------------------------------------------------
# ground-truth JSON codec
# ----------------------------------------------------------------------
def _node_str(node: CrayNodeId | None) -> str | None:
    return str(node) if node is not None else None


def _node_parse(text: str | None) -> CrayNodeId | None:
    return CrayNodeId.parse(text) if text is not None else None


def save_ground_truth(path: str | Path, truth: GroundTruth) -> None:
    """Serialize a :class:`GroundTruth` to JSON."""
    payload = {
        "failures": [
            {
                "node": _node_str(f.node),
                "failure_class": f.failure_class.name,
                "chain_name": f.chain_name,
                "first_anomaly_time": f.first_anomaly_time,
                "terminal_time": f.terminal_time,
            }
            for f in truth.failures
        ],
        "near_misses": [
            {
                "node": _node_str(m.node),
                "failure_class": m.failure_class.name,
                "chain_name": m.chain_name,
                "start_time": m.start_time,
                "end_time": m.end_time,
            }
            for m in truth.near_misses
        ],
        "maintenance": [
            {
                "start_time": m.start_time,
                "nodes": [_node_str(n) for n in m.nodes],
            }
            for m in truth.maintenance
        ],
    }
    Path(path).write_text(json.dumps(payload, indent=1))


def load_ground_truth(path: str | Path) -> GroundTruth:
    """Inverse of :func:`save_ground_truth`."""
    try:
        payload = json.loads(Path(path).read_text())
        failures = [
            FailureEvent(
                node=_node_parse(f["node"]),
                failure_class=FailureClass[f["failure_class"]],
                chain_name=f["chain_name"],
                first_anomaly_time=float(f["first_anomaly_time"]),
                terminal_time=float(f["terminal_time"]),
            )
            for f in payload["failures"]
        ]
        near_misses = [
            NearMissEvent(
                node=_node_parse(m["node"]),
                failure_class=FailureClass[m["failure_class"]],
                chain_name=m["chain_name"],
                start_time=float(m["start_time"]),
                end_time=float(m["end_time"]),
            )
            for m in payload["near_misses"]
        ]
        maintenance = [
            MaintenanceEvent(
                start_time=float(m["start_time"]),
                nodes=tuple(_node_parse(n) for n in m["nodes"]),
            )
            for m in payload["maintenance"]
        ]
    except (OSError, KeyError, ValueError, TypeError) as exc:
        raise SerializationError(f"cannot load ground truth from {path}") from exc
    return GroundTruth(
        failures=failures, near_misses=near_misses, maintenance=maintenance
    )
