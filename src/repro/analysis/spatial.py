"""Spatial correlation of node failures (extension).

Section 4.3 references Gupta et al.'s DSN'15 finding that "node failure
correlation is higher within the same cabinet than a blade".  This
module quantifies that correlation in a failure record: among all pairs
of failures whose terminals fall within a time window, what fraction
share a cabinet — compared to the fraction expected if failures struck
nodes independently at random.

A ratio well above 1 indicates cabinet-level cascades (shared power,
cooling or interconnect); the generator's ``cascade_prob`` knob injects
exactly that structure, and the extension bench verifies the analysis
recovers it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..errors import ConfigError
from ..simlog.generator import FailureEvent
from ..topology.cluster import ClusterTopology

__all__ = ["SpatialCorrelation", "spatial_correlation"]


@dataclass(frozen=True)
class SpatialCorrelation:
    """Observed vs expected same-cabinet rate among close failure pairs."""

    close_pairs: int
    same_cabinet_pairs: int
    expected_same_cabinet_rate: float

    @property
    def observed_rate(self) -> float:
        """Fraction of temporally close failure pairs sharing a cabinet."""
        if self.close_pairs == 0:
            return 0.0
        return self.same_cabinet_pairs / self.close_pairs

    @property
    def correlation_ratio(self) -> float:
        """Observed / expected; > 1 means spatially correlated failures."""
        if self.expected_same_cabinet_rate == 0.0:
            return 0.0
        return self.observed_rate / self.expected_same_cabinet_rate


def spatial_correlation(
    failures: Sequence[FailureEvent],
    topology: ClusterTopology,
    *,
    window_seconds: float = 300.0,
) -> SpatialCorrelation:
    """Measure cabinet-level correlation among temporally close failures.

    Parameters
    ----------
    failures:
        Failure events (ground truth or predictions), any order.
    topology:
        The machine layout (supplies the independence baseline).
    window_seconds:
        Two failures are "close" when their terminals are within this
        window.
    """
    if window_seconds <= 0:
        raise ConfigError("window_seconds must be > 0")
    ordered = sorted(failures, key=lambda f: f.terminal_time)
    close = same = 0
    for i, a in enumerate(ordered):
        for b in ordered[i + 1 :]:
            if b.terminal_time - a.terminal_time > window_seconds:
                break
            if a.node == b.node:
                continue  # same node re-failing is temporal, not spatial
            close += 1
            if a.node is not None and b.node is not None and a.node.same_cabinet(
                b.node
            ):
                same += 1
    # Under independence, the chance that a random *other* node shares
    # the cabinet is (nodes_per_cabinet - 1) / (num_nodes - 1).
    n = topology.num_nodes
    expected = (
        (topology.nodes_per_cabinet - 1) / (n - 1) if n > 1 else 0.0
    )
    return SpatialCorrelation(
        close_pairs=close,
        same_cabinet_pairs=same,
        expected_same_cabinet_rate=expected,
    )
