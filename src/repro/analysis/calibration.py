"""Automatic MSE-threshold calibration.

The paper sets its 0.5 threshold "based on experimentation: more than
0.5 MSE in the test data emitted chains that are quite dissimilar from
those in the trained failure chains" (Section 3.3).  This module turns
that experimentation into a procedure: score a *held-out validation
slice of the training window* over a threshold grid and pick the value
that maximizes F1 (or, alternatively, the loosest threshold whose FP
rate stays under a target).

Calibrating on a slice of the training window keeps the test data
untouched — the same discipline the paper's wording implies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..core.phase3 import Phase3Predictor
from ..errors import ConfigError
from ..events import EventSequence
from ..simlog.generator import GroundTruth
from .curves import OperatingPoint, threshold_curve

__all__ = ["CalibrationResult", "calibrate_threshold"]

DEFAULT_GRID = (0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0)


@dataclass(frozen=True)
class CalibrationResult:
    """Chosen threshold plus the full grid evaluation behind it."""

    threshold: float
    points: tuple[OperatingPoint, ...]

    @property
    def chosen_point(self) -> OperatingPoint:
        """The operating point of the chosen threshold."""
        for p in self.points:
            if p.threshold == self.threshold:
                return p
        raise ConfigError("chosen threshold missing from grid")  # pragma: no cover


def _f1(p: OperatingPoint) -> float:
    if p.recall + p.precision == 0:
        return 0.0
    return 2 * p.recall * p.precision / (p.recall + p.precision)


def calibrate_threshold(
    predictor: Phase3Predictor,
    sequences: Sequence[EventSequence],
    ground_truth: GroundTruth,
    *,
    grid: Sequence[float] = DEFAULT_GRID,
    max_fp_rate: float | None = None,
) -> CalibrationResult:
    """Pick the operating MSE threshold from a validation slice.

    Parameters
    ----------
    predictor:
        The trained phase-3 predictor (its configured threshold is
        ignored; every grid value is tried).
    sequences, ground_truth:
        The validation slice — typically the tail of the *training*
        window, so the test data stays blind.
    grid:
        Candidate thresholds.
    max_fp_rate:
        When given, choose the loosest threshold whose FP rate stays at
        or under this percentage (falling back to the tightest grid
        value if none qualifies); otherwise maximize F1, breaking ties
        toward the looser threshold (longer lead times).
    """
    if not grid:
        raise ConfigError("grid must be non-empty")
    points = threshold_curve(predictor, sequences, ground_truth, thresholds=grid)
    if max_fp_rate is not None:
        qualifying = [p for p in points if p.fp_rate <= max_fp_rate]
        if qualifying:
            chosen = max(qualifying, key=lambda p: p.threshold)
        else:
            chosen = min(points, key=lambda p: p.threshold)
    else:
        best = max(_f1(p) for p in points)
        candidates = [p for p in points if _f1(p) >= best - 1e-9]
        chosen = max(candidates, key=lambda p: p.threshold)
    return CalibrationResult(threshold=chosen.threshold, points=tuple(points))
