"""Confusion counts and the Table-6 prediction-efficiency metrics.

========  ==========================================
Metric    Formula (Table 6)
========  ==========================================
Recall    TP / (TP + FN)
Precision TP / (TP + FP)
Accuracy  (TP + TN) / (TP + FP + FN + TN)
F1 score  2 * recall * precision / (recall + precision)
FP rate   FP / (FP + TN)
FN rate   FN / (TP + FN)  ( = 1 - recall )
========  ==========================================
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ShapeError

__all__ = ["ConfusionCounts", "PredictionMetrics"]


@dataclass(frozen=True)
class ConfusionCounts:
    """Raw TP / FP / FN / TN counts.

    Semantics (Section 4.1): "Correctly predicted failures are true
    positives, incorrectly predicted failures are false positives,
    failures missed by Desh are false negatives, and the sequence of
    phrases not predicted by Desh as failures, which are actually not
    failures, are true negatives."
    """

    tp: int = 0
    fp: int = 0
    fn: int = 0
    tn: int = 0

    def __post_init__(self) -> None:
        for name in ("tp", "fp", "fn", "tn"):
            v = getattr(self, name)
            if not isinstance(v, int) or v < 0:
                raise ShapeError(f"{name} must be a non-negative int, got {v!r}")

    def __add__(self, other: "ConfusionCounts") -> "ConfusionCounts":
        return ConfusionCounts(
            tp=self.tp + other.tp,
            fp=self.fp + other.fp,
            fn=self.fn + other.fn,
            tn=self.tn + other.tn,
        )

    @property
    def total(self) -> int:
        """Total number of scored episodes."""
        return self.tp + self.fp + self.fn + self.tn

    def metrics(self) -> "PredictionMetrics":
        """Evaluate the Table-6 formulas over these counts."""
        return PredictionMetrics.from_counts(self)


@dataclass(frozen=True)
class PredictionMetrics:
    """The six Table-6 metrics, as percentages in [0, 100].

    Undefined ratios (zero denominators) evaluate to 0.
    """

    recall: float
    precision: float
    accuracy: float
    f1: float
    fp_rate: float
    fn_rate: float

    @classmethod
    def from_counts(cls, c: ConfusionCounts) -> "PredictionMetrics":
        """Apply every Table-6 formula to raw confusion counts."""
        def ratio(num: int, den: int) -> float:
            return 100.0 * num / den if den > 0 else 0.0

        recall = ratio(c.tp, c.tp + c.fn)
        precision = ratio(c.tp, c.tp + c.fp)
        accuracy = ratio(c.tp + c.tn, c.total)
        f1 = (
            2.0 * recall * precision / (recall + precision)
            if (recall + precision) > 0
            else 0.0
        )
        fp_rate = ratio(c.fp, c.fp + c.tn)
        fn_rate = ratio(c.fn, c.tp + c.fn)
        return cls(
            recall=recall,
            precision=precision,
            accuracy=accuracy,
            f1=f1,
            fp_rate=fp_rate,
            fn_rate=fn_rate,
        )

    def as_dict(self) -> dict[str, float]:
        """All six metrics keyed by name (for reports and JSON)."""
        return {
            "recall": self.recall,
            "precision": self.precision,
            "accuracy": self.accuracy,
            "f1": self.f1,
            "fp_rate": self.fp_rate,
            "fn_rate": self.fn_rate,
        }
