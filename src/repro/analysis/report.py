"""ASCII rendering helpers for benchmark output.

The benchmark harness prints the same rows/series the paper's tables and
figures report; these helpers keep that output aligned and consistent.
"""

from __future__ import annotations

from typing import Sequence

from ..errors import ShapeError

__all__ = ["render_table", "render_series"]


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def render_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], *, title: str = ""
) -> str:
    """Render an aligned ASCII table.

    >>> print(render_table(["a", "b"], [[1, 2.5]]))
    a  b
    -  ----
    1  2.50
    """
    if not headers:
        raise ShapeError("headers must not be empty")
    str_rows = [[_cell(v) for v in row] for row in rows]
    for row in str_rows:
        if len(row) != len(headers):
            raise ShapeError(
                f"row width {len(row)} does not match headers ({len(headers)})"
            )
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in str_rows)) if str_rows else len(headers[i])
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)).rstrip())
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(row))).rstrip())
    return "\n".join(lines)


def render_series(
    name: str, xs: Sequence[object], ys: Sequence[float], *, unit: str = ""
) -> str:
    """Render one figure series as ``name: x=y`` pairs.

    >>> render_series("lead", [1, 2], [10.0, 20.0], unit="s")
    'lead: 1=10.00s 2=20.00s'
    """
    if len(xs) != len(ys):
        raise ShapeError(f"series length mismatch: {len(xs)} vs {len(ys)}")
    pairs = " ".join(f"{x}={y:.2f}{unit}" for x, y in zip(xs, ys))
    return f"{name}: {pairs}"
