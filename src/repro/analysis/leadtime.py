"""Lead-time statistics per failure class and per system.

Reproduces Table 7 / Figure 6 (average lead time and standard deviation
per failure class) and Figure 7 (per system).  Observation 4 — the
per-class standard deviation is lower than the per-system standard
deviation — falls out of these aggregates and is asserted by the tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from ..simlog.faults import FailureClass
from .evaluation import EvaluationResult

__all__ = ["LeadTimeStats", "lead_times_by_class", "lead_time_overall"]


@dataclass(frozen=True)
class LeadTimeStats:
    """Mean / std / count of a set of lead times (seconds)."""

    mean: float
    std: float
    count: int

    @classmethod
    def from_values(cls, values: Sequence[float] | np.ndarray) -> "LeadTimeStats":
        """Aggregate raw lead times into (mean, std, count)."""
        arr = np.asarray(values, dtype=np.float64)
        if arr.size == 0:
            return cls(mean=0.0, std=0.0, count=0)
        return cls(mean=float(arr.mean()), std=float(arr.std()), count=int(arr.size))

    @property
    def mean_minutes(self) -> float:
        """The mean lead time expressed in minutes."""
        return self.mean / 60.0


def lead_times_by_class(
    result: EvaluationResult,
) -> Mapping[FailureClass, LeadTimeStats]:
    """Table 7 / Figure 6: lead-time stats per failure class (TPs only)."""
    buckets: dict[FailureClass, list[float]] = {c: [] for c in FailureClass}
    for s in result.true_positives():
        if s.failure_class is not None:
            buckets[s.failure_class].append(s.lead_seconds)
    return {c: LeadTimeStats.from_values(v) for c, v in buckets.items()}


def lead_time_overall(result: EvaluationResult) -> LeadTimeStats:
    """Figure 7: the whole-system lead-time statistic."""
    return LeadTimeStats.from_values(result.lead_times())
