"""Lead-time vs false-positive-rate sensitivity (Figure 8).

"We aim at longer lead times, yet need to limit the false positive rate"
(Section 4.2).  The sweep varies how aggressively phase 3 flags —
both the earliest allowed flag position and the MSE threshold — and
records the resulting (average lead time, FP rate) operating points.
Flagging earlier/looser yields longer lead times at a higher FP rate;
the bench asserts the monotone shape the paper's Figure 8 shows.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Sequence

from ..config import Phase3Config
from ..core.phase3 import Phase3Predictor
from ..events import EventSequence
from ..simlog.generator import GroundTruth
from .evaluation import Evaluator
from .leadtime import lead_time_overall

__all__ = ["SensitivityPoint", "sensitivity_sweep"]


@dataclass(frozen=True)
class SensitivityPoint:
    """One operating point of the Figure-8 trade-off curve."""

    flag_position: int
    mse_threshold: float
    avg_lead_seconds: float
    fp_rate: float
    recall: float


def sensitivity_sweep(
    predictor: Phase3Predictor,
    sequences: Sequence[EventSequence],
    ground_truth: GroundTruth,
    *,
    flag_positions: Sequence[int] = (0, 1, 2, 3),
    mse_thresholds: Sequence[float] = (2.0,),
    slack: float = 30.0,
) -> list[SensitivityPoint]:
    """Evaluate every (flag_position, threshold) combination.

    Returns points ordered by decreasing aggressiveness (longest lead
    first within each threshold).
    """
    evaluator = Evaluator(ground_truth, slack=slack)
    base = predictor.config
    points: list[SensitivityPoint] = []
    for threshold in mse_thresholds:
        for fpos in flag_positions:
            cfg = replace(base, flag_position=fpos, mse_threshold=threshold)
            swept = Phase3Predictor(
                predictor.regressor,
                predictor.scaler,
                config=cfg,
                episode_gap=predictor.episode_gap,
            )
            result = evaluator.evaluate(swept.predict_sequences(sequences))
            points.append(
                SensitivityPoint(
                    flag_position=fpos,
                    mse_threshold=float(threshold),
                    avg_lead_seconds=lead_time_overall(result).mean,
                    fp_rate=result.metrics.fp_rate,
                    recall=result.metrics.recall,
                )
            )
    return points
