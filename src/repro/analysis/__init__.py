"""Evaluation substrate: every metric, table and figure of Section 4.

* :mod:`~repro.analysis.metrics` — confusion counts and the Table-6
  formulas (recall, precision, accuracy, F1, FP rate, FN rate),
* :mod:`~repro.analysis.evaluation` — joins phase-3 verdicts with the
  generator's ground truth into scored predictions,
* :mod:`~repro.analysis.leadtime` — per-class / per-system lead-time
  statistics (Table 7, Figures 6-7),
* :mod:`~repro.analysis.sensitivity` — the lead-time vs false-positive
  trade-off curve (Figure 8),
* :mod:`~repro.analysis.unknown` — unknown-phrase contribution analysis
  (Table 8, Figure 9, Table 9),
* :mod:`~repro.analysis.cost` — prediction-latency measurement
  (Figure 10),
* :mod:`~repro.analysis.compare` — the Table-10-style model-zoo
  comparison grid (``repro compare``),
* :mod:`~repro.analysis.report` — ASCII rendering of tables and series.
"""

from .metrics import ConfusionCounts, PredictionMetrics
from .evaluation import (
    EpisodeKind,
    ScoredEpisode,
    Evaluator,
    EvaluationResult,
    evaluate_model,
)
from .leadtime import LeadTimeStats, lead_times_by_class, lead_time_overall
from .sensitivity import SensitivityPoint, sensitivity_sweep
from .unknown import UnknownPhraseStats, unknown_phrase_analysis, sequence_examples
from .cost import (
    CostSample,
    ThroughputSample,
    measure_batch_throughput,
    measure_prediction_cost,
)
from .compare import (
    COMPARE_PRESETS,
    CompareCell,
    CompareResult,
    compare_models,
    preset_config,
)
from .recovery import RecoveryAction, PAPER_ACTIONS, recovery_feasibility
from .spatial import SpatialCorrelation, spatial_correlation
from .curves import OperatingPoint, threshold_curve, trapezoid_auc
from .summary import system_report
from .crossval import FoldResult, rolling_origin_evaluation
from .calibration import CalibrationResult, calibrate_threshold
from .report import render_table, render_series

__all__ = [
    "ConfusionCounts",
    "PredictionMetrics",
    "EpisodeKind",
    "ScoredEpisode",
    "Evaluator",
    "EvaluationResult",
    "evaluate_model",
    "LeadTimeStats",
    "lead_times_by_class",
    "lead_time_overall",
    "SensitivityPoint",
    "sensitivity_sweep",
    "UnknownPhraseStats",
    "unknown_phrase_analysis",
    "sequence_examples",
    "CostSample",
    "ThroughputSample",
    "measure_batch_throughput",
    "measure_prediction_cost",
    "COMPARE_PRESETS",
    "CompareCell",
    "CompareResult",
    "compare_models",
    "preset_config",
    "RecoveryAction",
    "PAPER_ACTIONS",
    "recovery_feasibility",
    "SpatialCorrelation",
    "spatial_correlation",
    "OperatingPoint",
    "threshold_curve",
    "trapezoid_auc",
    "system_report",
    "FoldResult",
    "rolling_origin_evaluation",
    "CalibrationResult",
    "calibrate_threshold",
    "render_table",
    "render_series",
]
