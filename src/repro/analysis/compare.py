"""Table-10-style model-zoo comparison harness.

The paper's Table 10 compares Desh against baseline predictors on the
same data; this module runs the same head-to-head for the model zoo:
every requested backbone family (``lstm`` / ``tcn`` / ``attention``)
trains and evaluates on every requested synthetic system, and the grid
reports the Table-6 classification metrics, the mean lead time, and the
per-prediction latency measured by the existing
``phase3.prediction_ms`` histogram.

Two presets are provided: ``paper`` trains with the Table-5
hyperparameters (the numbers checked into EXPERIMENTS.md), ``tiny``
shrinks every network and epoch count to CI-smoke scale so the full
grid finishes in seconds.

Entry points: :func:`compare_models` (library) and ``repro compare``
(CLI).
"""

from __future__ import annotations

import dataclasses
import json
import time
from dataclasses import dataclass
from typing import Mapping, Optional, Sequence

from ..config import DeshConfig, EmbeddingConfig, Phase1Config, Phase2Config
from ..core.desh import Desh
from ..errors import ConfigError
from ..nn.registry import get_model
from ..obs import MetricsRegistry, activate_metrics
from ..simlog import generate_system
from .evaluation import evaluate_model
from .leadtime import lead_time_overall
from .report import render_table

__all__ = [
    "CompareCell",
    "CompareResult",
    "COMPARE_PRESETS",
    "preset_config",
    "compare_models",
]

#: Preset names accepted by :func:`preset_config`.
COMPARE_PRESETS = ("paper", "tiny")


@dataclass(frozen=True)
class CompareCell:
    """One (model, system) cell of the comparison grid."""

    model: str
    system: str
    recall: float
    precision: float
    accuracy: float
    f1: float
    mean_lead_seconds: float
    lead_count: int
    prediction_p50_ms: float
    prediction_count: int
    train_seconds: float


@dataclass(frozen=True)
class CompareResult:
    """The full grid plus the run parameters that produced it."""

    cells: tuple
    preset: str
    seed: int
    train_fraction: float

    def to_dict(self) -> dict:
        """JSON-serializable payload of the grid."""
        return {
            "preset": self.preset,
            "seed": self.seed,
            "train_fraction": self.train_fraction,
            "cells": [dataclasses.asdict(c) for c in self.cells],
        }

    def to_json(self) -> str:
        """The grid as an indented JSON document."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    def render(self) -> str:
        """The grid as an aligned ASCII table (Table-10 layout)."""
        headers = [
            "model",
            "system",
            "recall%",
            "acc%",
            "prec%",
            "F1%",
            "lead(s)",
            "p50(ms)",
            "train(s)",
        ]
        rows = [
            [
                c.model,
                c.system,
                c.recall,
                c.accuracy,
                c.precision,
                c.f1,
                c.mean_lead_seconds,
                c.prediction_p50_ms,
                c.train_seconds,
            ]
            for c in self.cells
        ]
        title = (
            f"model zoo comparison (preset={self.preset}, seed={self.seed})"
        )
        return render_table(headers, rows, title=title)


def preset_config(
    preset: str,
    *,
    seed: int,
    model: str,
    model_params: Mapping[str, object] | None = None,
) -> DeshConfig:
    """The :class:`DeshConfig` for one grid cell.

    ``paper`` keeps every Table-5 default; ``tiny`` is the CI-smoke
    scale used by the test suite's mini-configs (single-epoch
    embeddings and phase-1, a 32-unit phase-2 regressor).
    """
    params = dict(model_params or {})
    if preset == "paper":
        return DeshConfig(seed=seed, model=model, model_params=params)
    if preset == "tiny":
        return DeshConfig(
            embedding=EmbeddingConfig(dim=12, epochs=1),
            phase1=Phase1Config(hidden_size=16, epochs=1, batch_size=128),
            phase2=Phase2Config(hidden_size=32, epochs=40, learning_rate=0.01),
            seed=seed,
            model=model,
            model_params=params,
        )
    known = ", ".join(COMPARE_PRESETS)
    raise ConfigError(f"unknown preset {preset!r} (presets: {known})")


def _run_cell(
    model_name: str,
    system: str,
    *,
    preset: str,
    seed: int,
    train_fraction: float,
    model_params: Mapping[str, object] | None,
    cache_dir: Optional[str],
) -> CompareCell:
    """Train + evaluate one backbone family on one system."""
    config = preset_config(
        preset, seed=seed, model=model_name, model_params=model_params
    )
    log = generate_system(system, seed=seed)
    train, test = log.split(train_fraction)
    started = time.perf_counter()
    model = Desh(config).fit(
        list(train.records), train_classifier=False, cache_dir=cache_dir
    )
    train_seconds = time.perf_counter() - started

    registry = MetricsRegistry(active=True)
    with activate_metrics(registry):
        result = evaluate_model(model, list(test.records), test.ground_truth)
    lead = lead_time_overall(result)
    hist = registry.get("phase3.prediction_ms")
    p50 = hist.quantile(0.5) if hist is not None and hist.count else 0.0
    count = hist.count if hist is not None else 0
    m = result.metrics
    return CompareCell(
        model=model_name,
        system=system,
        recall=float(m.recall),
        precision=float(m.precision),
        accuracy=float(m.accuracy),
        f1=float(m.f1),
        mean_lead_seconds=float(lead.mean),
        lead_count=int(lead.count),
        prediction_p50_ms=float(p50),
        prediction_count=int(count),
        train_seconds=float(train_seconds),
    )


def compare_models(
    models: Sequence[str],
    systems: Sequence[str],
    *,
    preset: str = "paper",
    seed: int = 2018,
    train_fraction: float = 0.30,
    model_params: Mapping[str, Mapping[str, object]] | None = None,
    cache_dir: Optional[str] = None,
) -> CompareResult:
    """Run the full models x systems grid.

    Every model name is validated against the registry up front, so a
    typo fails before any training starts.  ``model_params`` optionally
    maps a model name to its hyperparameter overrides.  ``cache_dir``
    routes each cell's training through the artifact store — the
    model-aware stage fingerprints keep per-family artifacts separate,
    so repeat grids are warm.
    """
    if not models:
        raise ConfigError("compare needs at least one model")
    if not systems:
        raise ConfigError("compare needs at least one system")
    for name in models:
        get_model(name)  # fail fast on typos, before any training
    overrides = dict(model_params or {})
    cells = []
    for name in models:
        for system in systems:
            cells.append(
                _run_cell(
                    name,
                    system,
                    preset=preset,
                    seed=seed,
                    train_fraction=train_fraction,
                    model_params=overrides.get(name),
                    cache_dir=cache_dir,
                )
            )
    return CompareResult(
        cells=tuple(cells),
        preset=preset,
        seed=seed,
        train_fraction=train_fraction,
    )
