"""Operating curves over the detection threshold.

Figure 8 fixes thresholds and sweeps the flag position; this module
provides the complementary view — sweep the MSE threshold over a grid
and trace the (FP rate, recall) operating curve, plus a trapezoidal AUC
summary.  Useful for comparing detector variants with one scalar.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Sequence

import numpy as np

from ..core.phase3 import Phase3Predictor
from ..errors import ConfigError
from ..events import EventSequence
from ..simlog.generator import GroundTruth
from .evaluation import Evaluator
from .leadtime import lead_time_overall

__all__ = ["OperatingPoint", "threshold_curve", "trapezoid_auc"]


@dataclass(frozen=True)
class OperatingPoint:
    """One point of the threshold operating curve."""

    threshold: float
    recall: float
    precision: float
    fp_rate: float
    avg_lead_seconds: float


def threshold_curve(
    predictor: Phase3Predictor,
    sequences: Sequence[EventSequence],
    ground_truth: GroundTruth,
    thresholds: Sequence[float],
    *,
    slack: float = 30.0,
) -> list[OperatingPoint]:
    """Evaluate the detector at every threshold, ordered as given."""
    if not thresholds:
        raise ConfigError("thresholds must be non-empty")
    if any(t <= 0 for t in thresholds):
        raise ConfigError("thresholds must be positive")
    evaluator = Evaluator(ground_truth, slack=slack)
    points: list[OperatingPoint] = []
    for threshold in thresholds:
        swept = Phase3Predictor(
            predictor.regressor,
            predictor.scaler,
            config=replace(predictor.config, mse_threshold=float(threshold)),
            episode_gap=predictor.episode_gap,
        )
        result = evaluator.evaluate(swept.predict_sequences(sequences))
        m = result.metrics
        points.append(
            OperatingPoint(
                threshold=float(threshold),
                recall=m.recall,
                precision=m.precision,
                fp_rate=m.fp_rate,
                avg_lead_seconds=lead_time_overall(result).mean,
            )
        )
    return points


def trapezoid_auc(points: Sequence[OperatingPoint]) -> float:
    """Area under the (FP rate, recall) curve, in [0, 1].

    The curve is anchored at (0, 0) and (100, 100) — the degenerate
    all-quiet and all-flag detectors — so a handful of measured points
    yields a meaningful summary.
    """
    if not points:
        raise ConfigError("need at least one operating point")
    xs = [0.0] + [p.fp_rate for p in points] + [100.0]
    ys = [0.0] + [p.recall for p in points] + [100.0]
    order = np.argsort(xs)
    xs_arr = np.asarray(xs, dtype=np.float64)[order] / 100.0
    ys_arr = np.asarray(ys, dtype=np.float64)[order] / 100.0
    # Trapezoid rule (numpy's trapz was removed in 2.x; this is explicit).
    widths = np.diff(xs_arr)
    heights = 0.5 * (ys_arr[1:] + ys_arr[:-1])
    return float(np.sum(widths * heights))
