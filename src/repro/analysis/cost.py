"""Prediction-cost measurement (Figure 10).

Figure 10 plots the per-prediction time (milliseconds) against the
number of prediction steps, for history sizes 8 and 5.  The paper's
shape — more steps cost more time, larger histories cost slightly more
— follows from deployment-style *autoregressive* multi-step prediction:
each step re-runs the network with the previous prediction fed back in,
so a k-step prediction costs k forward passes, and every extra history
element adds an LSTM timestep to each pass.  That is the mode measured
here (:meth:`~repro.nn.model.SequenceClassifier.predict_autoregressive`).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..errors import ShapeError
from ..nn.model import SequenceClassifier

__all__ = ["CostSample", "measure_prediction_cost"]


@dataclass(frozen=True)
class CostSample:
    """Mean per-prediction latency for one (steps, history) combination."""

    steps: int
    history: int
    millis_per_prediction: float


def measure_prediction_cost(
    vocab_size: int = 80,
    *,
    steps_range: tuple[int, ...] = (1, 2, 3),
    histories: tuple[int, ...] = (5, 8),
    hidden_size: int = 64,
    embed_dim: int = 32,
    repeats: int = 50,
    seed: int = 0,
) -> list[CostSample]:
    """Time single-window predictions across steps x history combinations.

    A fresh (untrained weights are fine — latency does not depend on the
    values) classifier is built per combination; each measurement is the
    mean over *repeats* single-window forward passes, discarding one
    warm-up pass.
    """
    if repeats < 1:
        raise ShapeError("repeats must be >= 1")
    rng = np.random.default_rng(seed)
    samples: list[CostSample] = []
    for history in histories:
        window = rng.integers(0, vocab_size, size=(1, history))
        model = SequenceClassifier(
            vocab_size,
            embed_dim=embed_dim,
            hidden_size=hidden_size,
            num_layers=2,
            steps=1,
            seed=seed,
        )
        model._fitted = True  # latency measurement only
        for steps in steps_range:
            model.predict_autoregressive(window, steps)  # warm-up
            # Median over several passes: single-pass means are at the
            # mercy of OS scheduling noise at these microsecond scales.
            passes = []
            for _ in range(5):
                start = time.perf_counter()
                for _ in range(repeats):
                    model.predict_autoregressive(window, steps)
                passes.append(time.perf_counter() - start)
            samples.append(
                CostSample(
                    steps=steps,
                    history=history,
                    millis_per_prediction=1000.0 * float(np.median(passes)) / repeats,
                )
            )
    return samples
