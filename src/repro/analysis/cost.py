"""Prediction-cost measurement (Figure 10).

Figure 10 plots the per-prediction time (milliseconds) against the
number of prediction steps, for history sizes 8 and 5.  The paper's
shape — more steps cost more time, larger histories cost slightly more
— follows from deployment-style *autoregressive* multi-step prediction:
each step re-runs the network with the previous prediction fed back in,
so a k-step prediction costs k forward passes, and every extra history
element adds an LSTM timestep to each pass.  That is the mode measured
here (:meth:`~repro.nn.model.SequenceClassifier.predict_autoregressive`).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..errors import ShapeError
from ..nn.model import SequenceClassifier, SequenceRegressor

__all__ = [
    "CostSample",
    "ThroughputSample",
    "measure_batch_throughput",
    "measure_prediction_cost",
]


@dataclass(frozen=True)
class CostSample:
    """Mean per-prediction latency for one (steps, history) combination."""

    steps: int
    history: int
    millis_per_prediction: float


@dataclass(frozen=True)
class ThroughputSample:
    """Throughput of one scoring engine at one batch size.

    ``engine`` is ``"sequential"`` for the pre-batching serving path
    (the training forward, one window per call) or ``"batched"`` for
    the batch-major inference kernel.
    """

    engine: str
    batch_size: int
    millis_per_prediction: float

    @property
    def predictions_per_sec(self) -> float:
        """Sustained single-window predictions per second."""
        return 1000.0 / self.millis_per_prediction


def measure_batch_throughput(
    *,
    batch_sizes: tuple[int, ...] = (1, 8, 64, 256),
    history: int = 5,
    input_dim: int = 2,
    hidden_size: int = 64,
    num_layers: int = 2,
    windows: int = 256,
    passes: int = 5,
    seed: int = 0,
) -> list[ThroughputSample]:
    """Time phase-3-shaped window scoring, sequential vs batch-major.

    Defaults mirror the paper's phase-3 deployment shape (Table 5 row 3
    on the M1 preset): ``(history=5, 2)`` chain windows through a
    2-layer hidden-64 LSTM.  The ``"sequential"`` sample is the serving
    engine this repo used before the batch-major refactor — one
    :meth:`~repro.nn.model.SequenceRegressor.predict` call per window —
    and one ``"batched"`` sample per requested batch size runs the same
    *windows* window set through
    :meth:`~repro.nn.model.SequenceRegressor.predict_infer` in
    fixed-size slices.  Each measurement is the median over *passes*
    timed sweeps of the full window set, after one warm-up sweep.
    Weights are untrained — latency does not depend on the values.
    """
    if windows < 1:
        raise ShapeError("windows must be >= 1")
    if passes < 1:
        raise ShapeError("passes must be >= 1")
    if any(b < 1 for b in batch_sizes):
        raise ShapeError("batch sizes must be >= 1")
    rng = np.random.default_rng(seed)
    model = SequenceRegressor(
        input_dim,
        hidden_size=hidden_size,
        num_layers=num_layers,
        seed=seed,
    )
    model._fitted = True  # latency measurement only
    stack = rng.random((windows, history, input_dim))

    def timed(sweep) -> float:
        sweep()  # warm-up
        times = []
        for _ in range(passes):
            start = time.perf_counter()
            sweep()
            times.append(time.perf_counter() - start)
        return 1000.0 * float(np.median(times)) / windows

    def sequential() -> None:
        for i in range(windows):
            model.predict(stack[i : i + 1])

    samples = [
        ThroughputSample(
            engine="sequential",
            batch_size=1,
            millis_per_prediction=timed(sequential),
        )
    ]
    for batch in batch_sizes:

        def batched(batch: int = batch) -> None:
            for start in range(0, windows, batch):
                model.predict_infer(stack[start : start + batch])

        samples.append(
            ThroughputSample(
                engine="batched",
                batch_size=batch,
                millis_per_prediction=timed(batched),
            )
        )
    return samples


def measure_prediction_cost(
    vocab_size: int = 80,
    *,
    steps_range: tuple[int, ...] = (1, 2, 3),
    histories: tuple[int, ...] = (5, 8),
    hidden_size: int = 64,
    embed_dim: int = 32,
    repeats: int = 50,
    seed: int = 0,
) -> list[CostSample]:
    """Time single-window predictions across steps x history combinations.

    A fresh (untrained weights are fine — latency does not depend on the
    values) classifier is built per combination; each measurement is the
    mean over *repeats* single-window forward passes, discarding one
    warm-up pass.
    """
    if repeats < 1:
        raise ShapeError("repeats must be >= 1")
    rng = np.random.default_rng(seed)
    samples: list[CostSample] = []
    for history in histories:
        window = rng.integers(0, vocab_size, size=(1, history))
        model = SequenceClassifier(
            vocab_size,
            embed_dim=embed_dim,
            hidden_size=hidden_size,
            num_layers=2,
            steps=1,
            seed=seed,
        )
        model._fitted = True  # latency measurement only
        for steps in steps_range:
            model.predict_autoregressive(window, steps)  # warm-up
            # Median over several passes: single-pass means are at the
            # mercy of OS scheduling noise at these microsecond scales.
            passes = []
            for _ in range(5):
                start = time.perf_counter()
                for _ in range(repeats):
                    model.predict_autoregressive(window, steps)
                passes.append(time.perf_counter() - start)
            samples.append(
                CostSample(
                    steps=steps,
                    history=history,
                    millis_per_prediction=1000.0 * float(np.median(passes)) / repeats,
                )
            )
    return samples
