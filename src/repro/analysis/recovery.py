"""Recovery-action feasibility analysis (Section 4.6, "Discussion").

"How much lead time is sufficient? ... Process-level job migrations take
13 to 24 seconds, skip/lazy checkpointing, or quarantining nodes ... are
all feasible proactive actions ... Dino proposes node cloning service in
90 seconds.  Three minutes lead time suffices for the discussed recovery
options."

Given the evaluated predictions, this module computes — per proactive
mitigation — the fraction of correctly predicted failures whose lead
time exceeds the action's requirement, i.e. how many node failures the
warning could actually have mitigated.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..errors import ConfigError
from .evaluation import EvaluationResult

__all__ = [
    "RecoveryAction",
    "FeasibilityRow",
    "PAPER_ACTIONS",
    "recovery_feasibility",
]


@dataclass(frozen=True)
class RecoveryAction:
    """One proactive mitigation and the lead time it requires."""

    name: str
    required_seconds: float
    source: str = ""

    def __post_init__(self) -> None:
        if self.required_seconds <= 0:
            raise ConfigError(f"{self.name}: required_seconds must be > 0")


#: The mitigations and costs Section 4.6 cites.
PAPER_ACTIONS: tuple[RecoveryAction, ...] = (
    RecoveryAction("job quarantine (stop scheduling)", 5.0, "Gupta et al. [25]"),
    RecoveryAction("process-level live migration", 24.0, "Wang et al. [41]"),
    RecoveryAction("node cloning (DINO)", 90.0, "Rezaei & Mueller [39]"),
    RecoveryAction("lazy/skip checkpoint", 120.0, "Tiwari et al. [40]"),
)


@dataclass(frozen=True)
class FeasibilityRow:
    """Fraction of predicted failures an action could have mitigated."""

    action: RecoveryAction
    feasible: int
    total: int

    @property
    def fraction(self) -> float:
        """Feasible share in [0, 1] (0 when there are no predictions)."""
        return self.feasible / self.total if self.total else 0.0

    @property
    def percent(self) -> float:
        """Feasible share as a percentage."""
        return 100.0 * self.fraction


def recovery_feasibility(
    result: EvaluationResult,
    actions: Sequence[RecoveryAction] = PAPER_ACTIONS,
) -> list[FeasibilityRow]:
    """Per-action mitigation coverage over the true-positive lead times."""
    leads = result.lead_times()
    rows = []
    for action in actions:
        feasible = int(np.sum(leads >= action.required_seconds))
        rows.append(
            FeasibilityRow(action=action, feasible=feasible, total=len(leads))
        )
    return rows
