"""One-call evaluation report for a trained model on a test window.

Aggregates the whole analysis suite — Table-6 metrics, per-class lead
times, recovery feasibility, unknown-phrase contributions — into a
single markdown document, the artifact an operator would attach to a
deployment review.
"""

from __future__ import annotations

from typing import Iterable

from ..core.desh import DeshModel
from ..simlog.generator import GroundTruth
from ..simlog.record import LogRecord
from .evaluation import Evaluator
from .leadtime import lead_time_overall, lead_times_by_class
from .recovery import recovery_feasibility
from .unknown import unknown_phrase_analysis

__all__ = ["system_report"]


def system_report(
    model: DeshModel,
    test_records: Iterable[LogRecord],
    ground_truth: GroundTruth,
    *,
    title: str = "Desh evaluation report",
) -> str:
    """Render a full markdown evaluation report.

    Scores *test_records* against *ground_truth* and summarizes every
    analysis the library provides.
    """
    records = list(test_records)
    verdicts = model.score(records)
    result = Evaluator(ground_truth).evaluate(verdicts)
    m = result.metrics
    lead = lead_time_overall(result)

    lines: list[str] = [f"# {title}", ""]
    lines += [
        "## Prediction efficiency (Table 6)",
        "",
        "| metric | value |",
        "|---|---|",
        f"| recall | {m.recall:.2f}% |",
        f"| precision | {m.precision:.2f}% |",
        f"| accuracy | {m.accuracy:.2f}% |",
        f"| F1 score | {m.f1:.2f}% |",
        f"| FP rate | {m.fp_rate:.2f}% |",
        f"| FN rate | {m.fn_rate:.2f}% |",
        f"| avg lead time | {lead.mean:.0f}s ± {lead.std:.0f}s (n={lead.count}) |",
        "",
    ]

    lines += ["## Lead times per failure class (Table 7)", ""]
    lines += ["| class | avg lead (s) | std | n |", "|---|---|---|---|"]
    for cls, stats in lead_times_by_class(result).items():
        if stats.count:
            lines.append(
                f"| {cls.value} | {stats.mean:.1f} | {stats.std:.1f} | {stats.count} |"
            )
    lines.append("")

    lines += ["## Recovery feasibility (Section 4.6)", ""]
    lines += ["| proactive action | needs | coverage |", "|---|---|---|"]
    for row in recovery_feasibility(result):
        lines.append(
            f"| {row.action.name} | {row.action.required_seconds:.0f}s "
            f"| {row.percent:.0f}% ({row.feasible}/{row.total}) |"
        )
    lines.append("")

    stats = unknown_phrase_analysis(
        model.phase1.sequences,
        model.phase1.chains,
        model.parser.vocab,
        model.parser.labels_by_id(),
    )
    lines += ["## Top unknown-phrase failure indicators (Table 8)", ""]
    lines += ["| phrase | contribution |", "|---|---|"]
    for s in stats[:8]:
        lines.append(f"| `{s.phrase[:60]}` | {s.contribution_pct:.0f}% |")
    lines.append("")

    flagged = [v for v in verdicts if v.flagged]
    lines += [
        "## Model inventory",
        "",
        f"- phrases mined: {model.num_phrases}",
        f"- failure chains learned: {model.num_chains}",
        f"- test records scored: {len(records)}",
        f"- episodes evaluated: {len(verdicts)}, flagged: {len(flagged)}",
        "",
    ]
    return "\n".join(lines)
