"""Join phase-3 verdicts with generator ground truth into scored episodes.

An episode's *truth kind* is determined against the injected events:

* ``CHAIN`` — a ground-truth failure's terminal falls inside the episode
  span (so flagging it is a true positive, missing it a false negative);
* ``NEAR_MISS`` — the episode covers an injected near-miss sequence
  (flagging it is a false positive, per the paper's discussion of
  chain-like sequences that do not end in failure);
* ``CLUTTER`` — ambient anomalous traffic (flag = false positive).

Failures whose chain produced *no* scoreable episode (e.g. the parser
skipped its messages) are counted as additional false negatives so
recall cannot be inflated by losing episodes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from ..core.phase3 import EpisodeVerdict
from ..errors import DatasetError
from ..simlog.faults import FailureClass
from ..simlog.generator import FailureEvent, GroundTruth
from .metrics import ConfusionCounts, PredictionMetrics

__all__ = [
    "EpisodeKind",
    "ScoredEpisode",
    "Evaluator",
    "EvaluationResult",
    "evaluate_model",
]


class EpisodeKind(enum.Enum):
    """Ground-truth kind of an episode."""

    CHAIN = "chain"
    NEAR_MISS = "near_miss"
    CLUTTER = "clutter"


@dataclass(frozen=True)
class ScoredEpisode:
    """One verdict annotated with its ground-truth kind."""

    verdict: EpisodeVerdict
    kind: EpisodeKind
    failure: Optional[FailureEvent] = None

    @property
    def flagged(self) -> bool:
        """Whether phase 3 raised a failure flag for this episode."""
        return self.verdict.flagged

    @property
    def lead_seconds(self) -> float:
        """Predicted lead time (seconds) of the flag, 0 when unflagged."""
        return self.verdict.lead_seconds

    @property
    def failure_class(self) -> Optional[FailureClass]:
        """Ground-truth class of the matched failure, if any."""
        return self.failure.failure_class if self.failure else None


@dataclass
class EvaluationResult:
    """Scored episodes plus aggregate counts and metrics."""

    scored: list[ScoredEpisode]
    uncovered_failures: list[FailureEvent]
    counts: ConfusionCounts

    @property
    def metrics(self) -> PredictionMetrics:
        """The Table-6 metrics derived from the confusion counts."""
        return self.counts.metrics()

    def true_positives(self) -> list[ScoredEpisode]:
        """Flagged episodes that cover a real failure."""
        return [s for s in self.scored if s.kind is EpisodeKind.CHAIN and s.flagged]

    def false_positives(self) -> list[ScoredEpisode]:
        """Flagged episodes with no underlying failure."""
        return [
            s for s in self.scored if s.kind is not EpisodeKind.CHAIN and s.flagged
        ]

    def lead_times(self) -> np.ndarray:
        """Predicted lead times (seconds) of all true positives."""
        return np.array([s.lead_seconds for s in self.true_positives()])


class Evaluator:
    """Score verdicts against a :class:`GroundTruth`.

    Parameters
    ----------
    slack:
        Seconds of tolerance when matching an episode span to a
        ground-truth terminal or near-miss window.
    """

    def __init__(self, ground_truth: GroundTruth, *, slack: float = 30.0) -> None:
        if slack < 0:
            raise DatasetError("slack must be >= 0")
        self.ground_truth = ground_truth
        self.slack = slack

    # ------------------------------------------------------------------
    def classify(self, verdict: EpisodeVerdict) -> ScoredEpisode:
        """Attach the ground-truth kind to one verdict."""
        ep = verdict.episode
        for f in self.ground_truth.failures:
            if f.node == ep.node and (
                ep.start_time - self.slack
                <= f.terminal_time
                <= ep.end_time + self.slack
            ):
                return ScoredEpisode(verdict=verdict, kind=EpisodeKind.CHAIN, failure=f)
        for m in self.ground_truth.near_misses:
            if m.node == ep.node and (
                m.start_time - self.slack <= ep.start_time <= m.end_time + self.slack
            ):
                return ScoredEpisode(verdict=verdict, kind=EpisodeKind.NEAR_MISS)
        return ScoredEpisode(verdict=verdict, kind=EpisodeKind.CLUTTER)

    # ------------------------------------------------------------------
    def evaluate(self, verdicts: Sequence[EpisodeVerdict]) -> EvaluationResult:
        """Score all verdicts and tally the confusion counts."""
        scored = [self.classify(v) for v in verdicts]
        tp = fp = fn = tn = 0
        covered: set[tuple[object, float]] = set()
        for s in scored:
            if s.kind is EpisodeKind.CHAIN:
                assert s.failure is not None
                covered.add((s.failure.node, s.failure.terminal_time))
                if s.flagged:
                    tp += 1
                else:
                    fn += 1
            else:
                if s.flagged:
                    fp += 1
                else:
                    tn += 1
        uncovered = [
            f
            for f in self.ground_truth.failures
            if (f.node, f.terminal_time) not in covered
        ]
        fn += len(uncovered)
        return EvaluationResult(
            scored=scored,
            uncovered_failures=uncovered,
            counts=ConfusionCounts(tp=tp, fp=fp, fn=fn, tn=tn),
        )


def evaluate_model(
    model,
    records: Sequence,
    ground_truth: GroundTruth,
    *,
    store=None,
    workers: int = 1,
    slack: float = 30.0,
) -> EvaluationResult:
    """Score *model* over raw *records* and tally against *ground_truth*.

    With *store* (a :class:`~repro.pipeline.ArtifactStore`), the encoded
    test stream is cached keyed by (vocabulary, records) — repeated
    evaluations of the same log skip the parse entirely and only re-run
    phase-3 scoring.  ``store=None`` parses inline (no caching).
    """
    from ..pipeline.facade import cached_transform

    parsed = cached_transform(model.parser, records, store)
    sequences = [
        seq for seq in parsed.by_node().values() if seq.node is not None
    ]
    verdicts = model.score_sequences(sequences, workers=workers)
    return Evaluator(ground_truth, slack=slack).evaluate(verdicts)
