"""Rolling-origin evaluation: the time-series analogue of cross-validation.

The paper evaluates with a single chronological 30/70 split.  For a
time-series predictor that is the *minimum*; the standard robustness
check is rolling-origin evaluation — train on ``[0, t)``, test on
``[t, t + w)``, slide ``t`` forward, and report the per-fold metric
spread.  A model whose single-split numbers were luck shows high fold
variance here.

Folds never leak: each fold's training window strictly precedes its
test window, and the generator's ground truth is re-partitioned per fold.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..config import DeshConfig
from ..core.desh import Desh
from ..errors import ConfigError, TrainingError
from ..simlog.generator import GeneratedLog, GroundTruth
from .evaluation import Evaluator
from .leadtime import lead_time_overall
from .metrics import PredictionMetrics

__all__ = ["FoldResult", "rolling_origin_evaluation"]


@dataclass(frozen=True)
class FoldResult:
    """Outcome of one rolling-origin fold."""

    train_end: float
    test_end: float
    metrics: PredictionMetrics
    avg_lead_seconds: float
    num_train_failures: int
    num_test_failures: int


def _slice_truth(truth: GroundTruth, start: float, end: float) -> GroundTruth:
    return GroundTruth(
        failures=[f for f in truth.failures if start <= f.terminal_time < end],
        near_misses=[m for m in truth.near_misses if start <= m.end_time < end],
        maintenance=[m for m in truth.maintenance if start <= m.start_time < end],
    )


def rolling_origin_evaluation(
    log: GeneratedLog,
    config: DeshConfig,
    *,
    origins: Sequence[float] = (0.3, 0.45, 0.6),
    test_window_fraction: float = 0.3,
) -> list[FoldResult]:
    """Evaluate one system at several training origins.

    Parameters
    ----------
    log:
        A generated system (records + ground truth).
    config:
        Pipeline configuration used for every fold.
    origins:
        Training-window end points, as fractions of the horizon.  Each
        fold trains on ``[0, o)`` and tests on ``[o, o + w)``.
    test_window_fraction:
        Test-window width ``w`` as a fraction of the horizon.

    Folds whose training window contains no failure chain are skipped
    (the paper's pipeline cannot train without chains).
    """
    if not origins:
        raise ConfigError("origins must be non-empty")
    for o in origins:
        if not 0.0 < o < 1.0:
            raise ConfigError(f"origins must be in (0, 1), got {o}")
    if not 0.0 < test_window_fraction <= 1.0:
        raise ConfigError("test_window_fraction must be in (0, 1]")

    horizon = log.config.horizon
    results: list[FoldResult] = []
    for origin in origins:
        train_end = horizon * origin
        test_end = min(horizon, train_end + horizon * test_window_fraction)
        train_records = [r for r in log.records if r.timestamp < train_end]
        test_records = [
            r for r in log.records if train_end <= r.timestamp < test_end
        ]
        if not train_records or not test_records:
            continue
        try:
            model = Desh(config).fit(train_records, train_classifier=False)
        except TrainingError:
            continue  # no chains in this training window
        test_truth = _slice_truth(log.ground_truth, train_end, test_end)
        result = Evaluator(test_truth).evaluate(model.score(test_records))
        results.append(
            FoldResult(
                train_end=train_end,
                test_end=test_end,
                metrics=result.metrics,
                avg_lead_seconds=lead_time_overall(result).mean,
                num_train_failures=len(
                    _slice_truth(log.ground_truth, 0.0, train_end).failures
                ),
                num_test_failures=len(test_truth.failures),
            )
        )
    if not results:
        raise TrainingError("no fold produced a trainable window")
    return results
