"""Unknown-phrase analysis (Table 8, Figure 9, Table 9).

"We evaluate statistically how certain unknown phrases form a failure
chain, while others never appear in any chain" (Section 3.1) — for each
Unknown-labeled phrase, the fraction of its occurrences that fall inside
extracted failure chains is its *contribution to node failures*
(Table 8 column 3, Figure 9).

Table 9's qualitative counterpart — the same phrases appearing in
sequences with and without node failures — is reproduced by
:func:`sequence_examples`, which pairs a failure chain with a
non-failure episode sharing at least one phrase.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..core.chains import Episode, FailureChain
from ..events import EventSequence, Label
from ..parsing.encoder import PhraseVocabulary

__all__ = ["UnknownPhraseStats", "unknown_phrase_analysis", "sequence_examples"]


@dataclass(frozen=True)
class UnknownPhraseStats:
    """Occurrence statistics of one Unknown phrase."""

    phrase_id: int
    phrase: str
    total_occurrences: int
    chain_occurrences: int

    @property
    def contribution_pct(self) -> float:
        """Percent of occurrences inside failure chains (Table 8 col. 3)."""
        if self.total_occurrences == 0:
            return 0.0
        return 100.0 * self.chain_occurrences / self.total_occurrences


def unknown_phrase_analysis(
    sequences: Sequence[EventSequence],
    chains: Sequence[FailureChain],
    vocab: PhraseVocabulary,
    labels_by_id: Sequence[str],
) -> list[UnknownPhraseStats]:
    """Per-Unknown-phrase chain-contribution statistics.

    Returns stats for every Unknown phrase observed at least once,
    ordered by descending contribution.
    """
    total: dict[int, int] = {}
    for seq in sequences:
        for e in seq:
            if e.label == Label.UNKNOWN:
                total[e.phrase_id] = total.get(e.phrase_id, 0) + 1
    in_chain: dict[int, int] = {}
    for chain in chains:
        for e in chain.events:
            if e.label == Label.UNKNOWN:
                in_chain[e.phrase_id] = in_chain.get(e.phrase_id, 0) + 1
    out = [
        UnknownPhraseStats(
            phrase_id=pid,
            phrase=vocab.text_of(pid),
            total_occurrences=count,
            chain_occurrences=in_chain.get(pid, 0),
        )
        for pid, count in total.items()
        if pid < len(labels_by_id) and labels_by_id[pid] == Label.UNKNOWN
    ]
    out.sort(key=lambda s: (-s.contribution_pct, s.phrase_id))
    return out


def sequence_examples(
    chains: Sequence[FailureChain],
    non_failure_episodes: Sequence[Episode],
    vocab: PhraseVocabulary,
    *,
    max_pairs: int = 4,
) -> list[tuple[list[str], list[str]]]:
    """Table-9 style pairs: (failure phrases, non-failure phrases).

    Each pair shares at least one phrase id, demonstrating Observation 5:
    "A log message with a given phrase may be benign in one context while
    it is part of a failure chain in another one."
    """
    pairs: list[tuple[list[str], list[str]]] = []
    used: set[int] = set()
    for chain in chains:
        chain_ids = set(int(i) for i in chain.phrase_ids())
        for idx, ep in enumerate(non_failure_episodes):
            if idx in used or ep.ends_in_terminal:
                continue
            ep_ids = set(int(i) for i in ep.phrase_ids())
            if chain_ids & ep_ids:
                pairs.append(
                    (
                        [vocab.text_of(int(i)) for i in chain.phrase_ids()],
                        [vocab.text_of(int(i)) for i in ep.phrase_ids()],
                    )
                )
                used.add(idx)
                break
        if len(pairs) >= max_pairs:
            break
    return pairs
