"""Mergeable in-process metrics: counters, gauges, fixed-bucket histograms.

Zero-dependency and exact by construction:

* :class:`Counter` and :class:`Gauge` are integers/floats behind a
  lock;
* :class:`Histogram` keeps fixed-boundary bucket counts plus an
  **exact** running sum (a :class:`fractions.Fraction`), so merging is
  associative and commutative *bit-for-bit* — per-worker histograms
  recorded under ``ordered_parallel_map`` fan-out merge to exactly the
  sequential result, which the concurrency test asserts;
* quantiles (p50/p95/p99) are interpolated from the bucket counts,
  clamped to the observed min/max, and monotone in the quantile rank.

A :class:`MetricsRegistry` names and owns metrics, merges whole
registries (worker → global), and exports JSON or Prometheus text
exposition format.  A process-wide default registry always exists —
cheap counters record unconditionally — while *timed* instrumentation
(per-prediction latency) additionally gates on
:func:`repro.obs.obs_enabled` so the disabled overhead stays at ~0%.
"""

from __future__ import annotations

import json
import math
import re
import threading
from fractions import Fraction
from typing import Optional, Sequence

from ..errors import ObservabilityError

__all__ = [
    "DEFAULT_MS_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "metrics_registry",
    "set_metrics_registry",
    "activate_metrics",
]

#: Default bucket upper bounds for millisecond-latency histograms:
#: roughly logarithmic from 10 µs to 10 s, dense around the paper's
#: ~0.65 ms per-prediction operating point (Fig. 10).
DEFAULT_MS_BUCKETS: tuple[float, ...] = (
    0.01, 0.02, 0.05, 0.1, 0.2, 0.35, 0.5, 0.65, 0.8, 1.0,
    2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0, 1000.0,
    2000.0, 5000.0, 10000.0,
)


class Counter:
    """A monotonically increasing count (thread-safe)."""

    kind = "counter"

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, n: int = 1) -> None:
        """Add *n* (must be >= 0) to the count."""
        if n < 0:
            raise ObservabilityError(f"counter increments must be >= 0, got {n}")
        with self._lock:
            self._value += n

    @property
    def value(self) -> int:
        """The current count."""
        with self._lock:
            return self._value

    def merge(self, other: "Counter") -> "Counter":
        """Fold another counter in (sum of counts); returns self."""
        if not isinstance(other, Counter):
            raise ObservabilityError(
                f"cannot merge {type(other).__name__} into a Counter"
            )
        self.inc(other.value)
        return self

    def to_dict(self) -> dict:
        """JSON-serializable snapshot."""
        return {"type": self.kind, "value": self.value}


class Gauge:
    """A last-write-wins scalar (thread-safe), with an update count.

    Merging keeps the *other* gauge's value when it has been set at
    all (merge order is the precedence order) and sums update counts.
    """

    kind = "gauge"

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = float("nan")
        self._updates = 0

    def set(self, value: float) -> None:
        """Record a new current value."""
        with self._lock:
            self._value = float(value)
            self._updates += 1

    @property
    def value(self) -> float:
        """The most recently set value (NaN before any set)."""
        with self._lock:
            return self._value

    @property
    def updates(self) -> int:
        """How many times the gauge has been set."""
        with self._lock:
            return self._updates

    def merge(self, other: "Gauge") -> "Gauge":
        """Fold another gauge in (its value wins if ever set)."""
        if not isinstance(other, Gauge):
            raise ObservabilityError(
                f"cannot merge {type(other).__name__} into a Gauge"
            )
        other_value, other_updates = other.value, other.updates
        with self._lock:
            if other_updates:
                self._value = other_value
            self._updates += other_updates
        return self

    def to_dict(self) -> dict:
        """JSON-serializable snapshot."""
        with self._lock:
            return {
                "type": self.kind,
                "value": self._value,
                "updates": self._updates,
            }


class Histogram:
    """Fixed-boundary histogram with exact, order-independent merging.

    ``boundaries`` are strictly increasing bucket *upper* bounds; one
    implicit overflow bucket catches everything above the last bound.
    The running sum is kept as an exact :class:`~fractions.Fraction`,
    so ``a.merge(b)`` equals ``b.merge(a)`` bit-for-bit and a random
    split of an observation stream merges back to the sequential
    histogram exactly (the property suite asserts all of this).
    """

    kind = "histogram"

    def __init__(self, boundaries: Sequence[float] = DEFAULT_MS_BUCKETS) -> None:
        bounds = tuple(float(b) for b in boundaries)
        if not bounds:
            raise ObservabilityError("histogram needs at least one boundary")
        if any(not math.isfinite(b) for b in bounds):
            raise ObservabilityError(f"boundaries must be finite, got {bounds}")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ObservabilityError(
                f"boundaries must be strictly increasing, got {bounds}"
            )
        self._lock = threading.Lock()
        self._boundaries = bounds
        self._counts = [0] * (len(bounds) + 1)
        self._count = 0
        self._sum = Fraction(0)
        self._min: Optional[float] = None
        self._max: Optional[float] = None

    # ------------------------------------------------------------------
    @property
    def boundaries(self) -> tuple[float, ...]:
        """The bucket upper bounds (excluding the overflow bucket)."""
        return self._boundaries

    def observe(self, value: float) -> None:
        """Record one observation into its bucket."""
        value = float(value)
        if not math.isfinite(value):
            raise ObservabilityError(
                f"histogram observations must be finite, got {value!r}"
            )
        index = self._bucket_index(value)
        with self._lock:
            self._counts[index] += 1
            self._count += 1
            self._sum += Fraction(value)
            if self._min is None or value < self._min:
                self._min = value
            if self._max is None or value > self._max:
                self._max = value

    def _bucket_index(self, value: float) -> int:
        for i, upper in enumerate(self._boundaries):
            if value <= upper:
                return i
        return len(self._boundaries)

    # ------------------------------------------------------------------
    @property
    def count(self) -> int:
        """Total number of observations."""
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        """Sum of all observations (exact fraction, rendered as float)."""
        with self._lock:
            return float(self._sum)

    @property
    def sum_exact(self) -> Fraction:
        """The exact (Fraction) sum — the mergeable representation."""
        with self._lock:
            return self._sum

    @property
    def min(self) -> Optional[float]:
        """Smallest observation (None when empty)."""
        with self._lock:
            return self._min

    @property
    def max(self) -> Optional[float]:
        """Largest observation (None when empty)."""
        with self._lock:
            return self._max

    def bucket_counts(self) -> list[int]:
        """Per-bucket counts (last entry is the overflow bucket)."""
        with self._lock:
            return list(self._counts)

    # ------------------------------------------------------------------
    def quantile(self, q: float) -> float:
        """Estimate the *q*-quantile by in-bucket linear interpolation.

        Monotone in *q* and clamped to the observed ``[min, max]``;
        returns NaN for an empty histogram.
        """
        if not 0.0 <= q <= 1.0:
            raise ObservabilityError(f"quantile rank must be in [0, 1], got {q}")
        with self._lock:
            if self._count == 0:
                return float("nan")
            target = q * self._count
            cumulative = 0
            for i, upper in enumerate(self._boundaries):
                bucket = self._counts[i]
                if bucket and cumulative + bucket >= target:
                    lower = self._min if i == 0 else self._boundaries[i - 1]
                    value = lower + (upper - lower) * (
                        (target - cumulative) / bucket
                    )
                    return min(max(value, self._min), self._max)
                cumulative += bucket
            return self._max

    def summary(self) -> dict:
        """count/sum/min/max plus the p50/p95/p99 quantiles."""
        return {
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }

    # ------------------------------------------------------------------
    def merge(self, other: "Histogram") -> "Histogram":
        """Fold another histogram in (exact; boundaries must match)."""
        if not isinstance(other, Histogram):
            raise ObservabilityError(
                f"cannot merge {type(other).__name__} into a Histogram"
            )
        if other._boundaries != self._boundaries:
            raise ObservabilityError(
                "cannot merge histograms with different boundaries: "
                f"{self._boundaries} vs {other._boundaries}"
            )
        with other._lock:
            counts = list(other._counts)
            count = other._count
            total = other._sum
            omin, omax = other._min, other._max
        with self._lock:
            for i, c in enumerate(counts):
                self._counts[i] += c
            self._count += count
            self._sum += total
            if omin is not None and (self._min is None or omin < self._min):
                self._min = omin
            if omax is not None and (self._max is None or omax > self._max):
                self._max = omax
        return self

    def copy(self) -> "Histogram":
        """An independent histogram with identical state."""
        return Histogram(self._boundaries).merge(self)

    def to_dict(self) -> dict:
        """JSON-serializable snapshot (buckets + summary quantiles)."""
        out: dict = {
            "type": self.kind,
            "boundaries": list(self._boundaries),
            "counts": self.bucket_counts(),
        }
        out.update(self.summary())
        return out


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
def _prom_name(name: str) -> str:
    """Sanitize a dotted metric name into a Prometheus identifier."""
    return "repro_" + re.sub(r"[^a-zA-Z0-9_]", "_", name)


def _prom_float(value: float) -> str:
    """Prometheus exposition rendering of one float."""
    return repr(float(value))


class MetricsRegistry:
    """Named metrics with get-or-create access, merging and export.

    ``active=True`` marks the registry as explicitly collecting, which
    (together with an enabled tracer) turns on *timed* instrumentation
    — see :func:`repro.obs.obs_enabled`.  Cheap counters record into
    the registry regardless.
    """

    def __init__(self, *, active: bool = False) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[str, object] = {}
        self.active = bool(active)

    # ------------------------------------------------------------------
    def _get_or_create(self, name: str, kind: str, factory):
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = self._metrics[name] = factory()
            elif metric.kind != kind:
                raise ObservabilityError(
                    f"metric {name!r} already registered as {metric.kind}, "
                    f"requested as {kind}"
                )
            return metric

    def counter(self, name: str) -> Counter:
        """Get or create the counter *name*."""
        return self._get_or_create(name, "counter", Counter)

    def gauge(self, name: str) -> Gauge:
        """Get or create the gauge *name*."""
        return self._get_or_create(name, "gauge", Gauge)

    def histogram(
        self, name: str, boundaries: "Sequence[float] | None" = None
    ) -> Histogram:
        """Get or create the histogram *name*.

        ``boundaries`` applies on creation; asking for an existing
        histogram with *different* boundaries is an error (merging
        would silently misbucket).
        """
        bounds = (
            tuple(float(b) for b in boundaries)
            if boundaries is not None
            else DEFAULT_MS_BUCKETS
        )
        metric = self._get_or_create(
            name, "histogram", lambda: Histogram(bounds)
        )
        if boundaries is not None and metric.boundaries != bounds:
            raise ObservabilityError(
                f"histogram {name!r} exists with boundaries "
                f"{metric.boundaries}, requested {bounds}"
            )
        return metric

    # ------------------------------------------------------------------
    def names(self) -> list[str]:
        """All registered metric names, sorted."""
        with self._lock:
            return sorted(self._metrics)

    def get(self, name: str):
        """The metric registered under *name*, or ``None``."""
        with self._lock:
            return self._metrics.get(name)

    def reset(self) -> None:
        """Drop every registered metric."""
        with self._lock:
            self._metrics.clear()

    # ------------------------------------------------------------------
    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Fold another registry in, metric by metric; returns self.

        Same-named metrics must have the same kind; counters and
        histograms merge exactly, gauges last-write-wins (the merged-in
        registry's value takes precedence when it was ever set).
        """
        if not isinstance(other, MetricsRegistry):
            raise ObservabilityError(
                f"cannot merge {type(other).__name__} into a MetricsRegistry"
            )
        with other._lock:
            items = sorted(other._metrics.items())
        for name, metric in items:
            if isinstance(metric, Histogram):
                mine = self.histogram(name, metric.boundaries)
            elif isinstance(metric, Gauge):
                mine = self.gauge(name)
            else:
                mine = self.counter(name)
            mine.merge(metric)
        return self

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """All metrics as plain dicts, keyed by sorted name."""
        with self._lock:
            items = sorted(self._metrics.items())
        return {name: metric.to_dict() for name, metric in items}

    def to_json(self, *, indent: int = 1) -> str:
        """The snapshot as a JSON document."""
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def to_prometheus(self) -> str:
        """Prometheus text exposition format (``# TYPE`` + samples)."""
        with self._lock:
            items = sorted(self._metrics.items())
        lines: list[str] = []
        for name, metric in items:
            pname = _prom_name(name)
            lines.append(f"# TYPE {pname} {metric.kind}")
            if isinstance(metric, Histogram):
                cumulative = 0
                for upper, count in zip(
                    metric.boundaries, metric.bucket_counts()
                ):
                    cumulative += count
                    lines.append(
                        f'{pname}_bucket{{le="{_prom_float(upper)}"}} '
                        f"{cumulative}"
                    )
                lines.append(f'{pname}_bucket{{le="+Inf"}} {metric.count}')
                lines.append(f"{pname}_sum {_prom_float(metric.sum)}")
                lines.append(f"{pname}_count {metric.count}")
            elif isinstance(metric, Gauge):
                lines.append(f"{pname} {_prom_float(metric.value)}")
            else:
                lines.append(f"{pname} {metric.value}")
        return "\n".join(lines) + ("\n" if lines else "")


# ----------------------------------------------------------------------
# process-wide current registry
# ----------------------------------------------------------------------
_STATE_LOCK = threading.Lock()
_CURRENT: list = [MetricsRegistry()]  # one-slot box: reads are an index


def metrics_registry() -> MetricsRegistry:
    """The process-wide metrics registry (always present)."""
    return _CURRENT[0]


def set_metrics_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Install *registry* process-wide; returns the previous one."""
    if not isinstance(registry, MetricsRegistry):
        raise ObservabilityError(
            f"set_metrics_registry needs a MetricsRegistry, "
            f"got {type(registry).__name__}"
        )
    with _STATE_LOCK:
        previous = _CURRENT[0]
        _CURRENT[0] = registry
    return previous


class activate_metrics:
    """Context manager: install a registry, restore the previous on exit."""

    def __init__(self, registry: MetricsRegistry) -> None:
        self.registry = registry
        self._previous: "MetricsRegistry | None" = None

    def __enter__(self) -> MetricsRegistry:
        """Install the registry and return it."""
        self._previous = set_metrics_registry(self.registry)
        return self.registry

    def __exit__(self, exc_type, exc, tb) -> bool:
        """Restore whatever registry was installed before."""
        set_metrics_registry(self._previous)
        return False
