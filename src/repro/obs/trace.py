"""Structured tracing: nested spans over a monotonic clock.

A :class:`Span` is one named, timed unit of work; spans nest through a
per-thread stack, so instrumented code only ever says ``with
tracer.span("parse.transform")`` and the parent/child edges fall out of
dynamic scope.  The :class:`Tracer` records every span in creation
order under a lock (worker threads trace safely; their spans parent to
whatever was active on *their* stack), exports JSON lines for offline
tooling, and renders a deterministic :meth:`Tracer.describe` tree —
with durations masked it is byte-stable across runs, which is what the
golden-trace test pins.

The process-wide default is :class:`NullTracer`: ``span()`` returns a
shared no-op handle, so instrumentation left in hot paths costs one
call and no allocation beyond its keyword dict.  ``repro trace <cmd>``
(and tests) install a recording :class:`Tracer` via :func:`set_tracer`
/ :func:`activate_tracer`.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional

from ..errors import ObservabilityError

__all__ = [
    "Span",
    "SpanHandle",
    "Tracer",
    "NullTracer",
    "current_tracer",
    "set_tracer",
    "activate_tracer",
]


def _fmt_value(value: object) -> str:
    """Stable, compact rendering of one attribute value."""
    if isinstance(value, float):
        return format(value, ".6g")
    if isinstance(value, str):
        return repr(value)
    return str(value)


@dataclass
class Span:
    """One named, timed unit of work in a trace tree.

    ``start`` is a :func:`time.perf_counter` reading (process-relative,
    monotonic); ``duration`` stays NaN until the span finishes.
    """

    name: str
    span_id: int
    parent_id: Optional[int]
    start: float
    duration: float = float("nan")
    attributes: dict = field(default_factory=dict)
    error: Optional[str] = None

    @property
    def finished(self) -> bool:
        """Whether the span has exited (duration recorded)."""
        return self.duration == self.duration  # NaN != NaN

    def to_dict(self) -> dict:
        """JSON-serializable form (one line of the JSONL export)."""
        out: dict = {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start": self.start,
            "duration": self.duration if self.finished else None,
        }
        if self.attributes:
            out["attributes"] = dict(self.attributes)
        if self.error is not None:
            out["error"] = self.error
        return out

    def describe_line(self, *, mask_duration: bool = True) -> str:
        """One deterministic text line: name, sorted attrs, error, time."""
        parts = [self.name]
        for key in sorted(self.attributes):
            parts.append(f"{key}={_fmt_value(self.attributes[key])}")
        if self.error is not None:
            parts.append(f"!{self.error}")
        if not mask_duration and self.finished:
            parts.append(f"({self.duration * 1e3:.3f}ms)")
        return " ".join(parts)


class SpanHandle:
    """Context manager that finishes its :class:`Span` on exit."""

    __slots__ = ("_tracer", "span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self.span = span

    def set(self, **attributes: object) -> "SpanHandle":
        """Attach (or overwrite) span attributes; chains fluently."""
        self.span.attributes.update(attributes)
        return self

    def __enter__(self) -> "SpanHandle":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._tracer._finish(self.span, exc_type)
        return False


class _NullHandle:
    """Shared no-op span handle returned by :class:`NullTracer`."""

    __slots__ = ()

    def set(self, **attributes: object) -> "_NullHandle":
        """Ignore attributes; chains fluently like the real handle."""
        return self

    def __enter__(self) -> "_NullHandle":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_HANDLE = _NullHandle()


class NullTracer:
    """Disabled tracer: spans cost one call and record nothing."""

    #: Gate for expensive instrumentation (timing, attribute building).
    enabled = False

    def span(self, name: str, **attributes: object) -> _NullHandle:
        """Return the shared no-op handle (nothing is recorded)."""
        return _NULL_HANDLE

    def spans(self) -> list:
        """Always empty: a NullTracer records nothing."""
        return []

    def clear(self) -> None:
        """No-op (nothing is ever recorded)."""

    def describe(self, *, mask_durations: bool = True) -> str:
        """Always the empty string (nothing to render)."""
        return ""

    def export_jsonl(self, path: "str | Path") -> int:
        """Refuse: exporting a disabled trace is a caller bug."""
        raise ObservabilityError(
            "tracing is disabled (NullTracer); install a Tracer via "
            "repro.obs.set_tracer before exporting spans"
        )


class Tracer:
    """Thread-safe in-process span recorder with deterministic ids.

    Span ids are sequential creation-order integers, so a
    single-threaded run produces an identical id assignment every time
    — the property the golden-trace test relies on.
    """

    #: Gate for expensive instrumentation (timing, attribute building).
    enabled = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._spans: list[Span] = []
        self._next_id = 0
        self._local = threading.local()

    # ------------------------------------------------------------------
    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def span(self, name: str, **attributes: object) -> SpanHandle:
        """Open a span as a child of this thread's active span.

        Use as a context manager; the span's duration is measured from
        entry of this call to ``__exit__``.  A thread with no active
        span starts a new root.
        """
        stack = self._stack()
        parent = stack[-1].span_id if stack else None
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
            span = Span(
                name=name,
                span_id=span_id,
                parent_id=parent,
                start=time.perf_counter(),
                attributes=dict(attributes),
            )
            self._spans.append(span)
        stack.append(span)
        return SpanHandle(self, span)

    def _finish(self, span: Span, exc_type) -> None:
        span.duration = time.perf_counter() - span.start
        if exc_type is not None:
            span.error = exc_type.__name__
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        elif span in stack:
            # Out-of-order exit (e.g. a generator finalized late): drop
            # the span from wherever it sits so nesting self-heals.
            stack.remove(span)

    # ------------------------------------------------------------------
    def spans(self) -> list[Span]:
        """Snapshot of all recorded spans in creation order."""
        with self._lock:
            return list(self._spans)

    def clear(self) -> None:
        """Forget every recorded span (ids keep advancing)."""
        with self._lock:
            self._spans.clear()

    # ------------------------------------------------------------------
    def describe(self, *, mask_durations: bool = True) -> str:
        """Deterministic tree rendering of the recorded spans.

        Children are ordered by creation; with ``mask_durations=True``
        (the default) the output is byte-stable for a deterministic
        workload, so it can be pinned verbatim in golden tests.
        """
        spans = self.spans()
        children: dict[Optional[int], list[Span]] = {}
        for span in spans:
            children.setdefault(span.parent_id, []).append(span)
        lines: list[str] = []

        def _render(span: Span, depth: int) -> None:
            lines.append(
                "  " * depth
                + span.describe_line(mask_duration=mask_durations)
            )
            for child in children.get(span.span_id, ()):
                _render(child, depth + 1)

        for root in children.get(None, ()):
            _render(root, 0)
        return "\n".join(lines)

    def export_jsonl(self, path: "str | Path") -> int:
        """Write one JSON object per span; returns the span count."""
        spans = self.spans()
        payload = "".join(
            json.dumps(span.to_dict(), sort_keys=True) + "\n" for span in spans
        )
        Path(path).write_text(payload)
        return len(spans)


# ----------------------------------------------------------------------
# process-wide current tracer
# ----------------------------------------------------------------------
_STATE_LOCK = threading.Lock()
_CURRENT: list = [NullTracer()]  # one-slot box so reads are a plain index


def current_tracer():
    """The process-wide tracer (a :class:`NullTracer` by default)."""
    return _CURRENT[0]


def set_tracer(tracer) -> object:
    """Install *tracer* process-wide; returns the previous tracer."""
    if not callable(getattr(tracer, "span", None)):
        raise ObservabilityError(
            f"set_tracer needs a Tracer/NullTracer-like object with a "
            f"span() method, got {type(tracer).__name__}"
        )
    with _STATE_LOCK:
        previous = _CURRENT[0]
        _CURRENT[0] = tracer
    return previous


class activate_tracer:
    """Context manager: install a tracer, restore the previous on exit.

    ::

        tracer = Tracer()
        with activate_tracer(tracer):
            model.score(records)
        print(tracer.describe())
    """

    def __init__(self, tracer) -> None:
        self.tracer = tracer
        self._previous: object = None

    def __enter__(self):
        """Install the tracer and return it."""
        self._previous = set_tracer(self.tracer)
        return self.tracer

    def __exit__(self, exc_type, exc, tb) -> bool:
        """Restore whatever tracer was installed before."""
        set_tracer(self._previous)
        return False
