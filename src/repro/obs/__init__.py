"""Observability layer: tracing spans, metrics, and profiling hooks.

Two zero-dependency primitives, wired through the pipeline's hot paths:

* :mod:`.trace` — nested spans over a monotonic clock, recorded by a
  thread-safe :class:`Tracer` (JSONL export, deterministic
  ``describe()`` for golden tests); the process default is a no-op
  :class:`NullTracer`, so tracing overhead is strictly opt-in.
* :mod:`.metrics` — counters, gauges and fixed-bucket histograms with
  *exact* (order-independent) merge semantics, owned by a
  :class:`MetricsRegistry` exporting JSON or Prometheus text.

The split between "always on" and "opt-in" instrumentation:

* cheap event counters (cache hits, quarantined lines, raised
  warnings) record unconditionally into :func:`metrics_registry`;
* *timed* instrumentation — the per-prediction latency histogram that
  mirrors the paper's Fig. 10 ~0.65 ms claim — additionally gates on
  :func:`obs_enabled`, which is true only under an enabled tracer
  (``repro trace``) or an explicitly ``active`` registry
  (``repro metrics``).  ``bench_obs_overhead.py`` pins the cost: ≤5%
  with tracing on, ~0% off.
"""

from __future__ import annotations

from .metrics import (
    DEFAULT_MS_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    activate_metrics,
    metrics_registry,
    set_metrics_registry,
)
from .trace import (
    NullTracer,
    Span,
    SpanHandle,
    Tracer,
    activate_tracer,
    current_tracer,
    set_tracer,
)

__all__ = [
    "Span",
    "SpanHandle",
    "Tracer",
    "NullTracer",
    "current_tracer",
    "set_tracer",
    "activate_tracer",
    "DEFAULT_MS_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "metrics_registry",
    "set_metrics_registry",
    "activate_metrics",
    "obs_enabled",
]


def obs_enabled() -> bool:
    """Whether *timed* instrumentation should record.

    True when a recording tracer is installed or the current metrics
    registry was explicitly activated; cheap counters do not consult
    this (they always record).
    """
    return current_tracer().enabled or metrics_registry().active
