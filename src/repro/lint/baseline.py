"""Checked-in baseline of grandfathered findings.

The baseline lets the self-lint gate turn red only for *new* findings:
existing ones are recorded (by content key, so they track the flagged
line through unrelated edits) and filtered out until someone fixes them
and regenerates the file with ``repro lint --update-baseline``.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import Iterable, Sequence

from ..errors import LintError
from .findings import Finding

__all__ = ["Baseline"]

_VERSION = 1


class Baseline:
    """A multiset of grandfathered finding keys."""

    def __init__(self, counts: "Counter[str] | None" = None) -> None:
        self.counts: Counter[str] = Counter(counts or {})

    # ------------------------------------------------------------------
    @classmethod
    def from_findings(cls, findings: Iterable[Finding]) -> "Baseline":
        """Baseline that grandfathers exactly *findings*."""
        return cls(Counter(f.key() for f in findings))

    @classmethod
    def load(cls, path: "str | Path") -> "Baseline":
        """Read a baseline file; raises :class:`LintError` when malformed."""
        path = Path(path)
        try:
            payload = json.loads(path.read_text())
        except OSError as exc:
            raise LintError(f"cannot read baseline {path}: {exc}") from exc
        except ValueError as exc:
            raise LintError(f"baseline {path} is not valid JSON: {exc}") from exc
        if not isinstance(payload, dict) or payload.get("version") != _VERSION:
            raise LintError(
                f"baseline {path} has unsupported format "
                f"(want version {_VERSION})"
            )
        counts = Counter()
        for entry in payload.get("entries", []):
            counts[str(entry["key"])] += int(entry.get("count", 1))
        return cls(counts)

    def save(self, path: "str | Path", *, findings: Sequence[Finding] = ()) -> None:
        """Write the baseline; *findings* annotate entries for reviewers."""
        notes: dict[str, Finding] = {}
        for f in findings:
            notes.setdefault(f.key(), f)
        entries = []
        for key in sorted(self.counts):
            entry: dict = {"key": key, "count": self.counts[key]}
            if key in notes:
                f = notes[key]
                entry["note"] = f"{f.path}: {f.rule} {f.message}"
            entries.append(entry)
        payload = {"version": _VERSION, "entries": entries}
        Path(path).write_text(json.dumps(payload, indent=1) + "\n")

    # ------------------------------------------------------------------
    def filter(
        self, findings: Sequence[Finding]
    ) -> tuple[list[Finding], list[Finding]]:
        """Split *findings* into (new, baselined).

        Each baseline entry absorbs at most ``count`` findings with its
        key, so duplicating a grandfathered violation still turns the
        gate red.
        """
        budget = Counter(self.counts)
        fresh: list[Finding] = []
        grandfathered: list[Finding] = []
        for f in findings:
            key = f.key()
            if budget[key] > 0:
                budget[key] -= 1
                grandfathered.append(f)
            else:
                fresh.append(f)
        return fresh, grandfathered

    def __len__(self) -> int:
        return sum(self.counts.values())
