"""R5 — public-API surface consistency.

Every module must document itself and keep ``__all__`` truthful: the
list is what ``from repro.x import *`` exports, what the docs index,
and what downstream users treat as stable API.  The rule enforces:

* a module docstring;
* ``__all__`` present in any module that defines public top-level
  functions or classes (``__main__``/``conftest`` exempt);
* every ``__all__`` entry bound in the module, no duplicates;
* every public top-level def/class listed in ``__all__``;
* docstrings on public top-level defs/classes and their public methods.
"""

from __future__ import annotations

import ast
from pathlib import PurePath
from typing import Iterable, List, Optional, Set

from ..findings import Finding
from . import ModuleInfo, Rule, register

__all__ = ["PublicApiRule"]

_EXEMPT_FILES = {"__main__.py", "conftest.py", "setup.py"}


def _all_entries(tree: ast.Module) -> "tuple[Optional[ast.AST], list[str]]":
    """The ``__all__`` assignment node and its string entries, if present."""
    for node in tree.body:
        targets = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets = [node.target]
        for target in targets:
            if isinstance(target, ast.Name) and target.id == "__all__":
                value = node.value
                entries = []
                if isinstance(value, (ast.List, ast.Tuple)):
                    for elt in value.elts:
                        if isinstance(elt, ast.Constant) and isinstance(
                            elt.value, str
                        ):
                            entries.append(elt.value)
                return node, entries
    return None, []


def _bound_names(tree: ast.Module) -> Set[str]:
    """Names bound at module top level (defs, classes, imports, assigns)."""
    bound: Set[str] = set()
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            bound.add(node.name)
        elif isinstance(node, ast.Import):
            for alias in node.names:
                bound.add(alias.asname or alias.name.split(".")[0])
        elif isinstance(node, ast.ImportFrom):
            for alias in node.names:
                if alias.name == "*":
                    continue
                bound.add(alias.asname or alias.name)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    bound.add(target.id)
                elif isinstance(target, ast.Tuple):
                    bound.update(
                        e.id for e in target.elts if isinstance(e, ast.Name)
                    )
        elif isinstance(node, ast.AnnAssign) and isinstance(
            node.target, ast.Name
        ):
            bound.add(node.target.id)
    return bound


@register
class PublicApiRule(Rule):
    """Docstrings everywhere public; ``__all__`` complete and truthful."""

    id = "R5"
    summary = (
        "module docstrings, public def/class/method docstrings, and an "
        "__all__ that matches the public definitions"
    )

    def check_module(self, module: ModuleInfo) -> Iterable[Finding]:
        """Check docstring and ``__all__`` consistency of one module."""
        findings: List[Finding] = []
        tree = module.tree
        filename = PurePath(module.path).name
        if not ast.get_docstring(tree):
            findings.append(
                module.finding(
                    tree, self.id, "module has no docstring"
                )
            )
        public_defs = [
            node
            for node in tree.body
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            )
            and not node.name.startswith("_")
        ]
        for node in public_defs:
            kind = "class" if isinstance(node, ast.ClassDef) else "function"
            if not ast.get_docstring(node):
                findings.append(
                    module.finding(
                        node, self.id, f"public {kind} {node.name} has no docstring"
                    )
                )
            if isinstance(node, ast.ClassDef):
                for item in node.body:
                    if (
                        isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
                        and not item.name.startswith("_")
                        and not ast.get_docstring(item)
                    ):
                        findings.append(
                            module.finding(
                                item,
                                self.id,
                                f"public method {node.name}.{item.name} "
                                "has no docstring",
                            )
                        )
        if filename in _EXEMPT_FILES:
            return findings
        all_node, entries = _all_entries(tree)
        if all_node is None:
            if public_defs:
                findings.append(
                    module.finding(
                        tree,
                        self.id,
                        "module defines public API but has no __all__",
                    )
                )
            return findings
        seen: Set[str] = set()
        for entry in entries:
            if entry in seen:
                findings.append(
                    module.finding(
                        all_node, self.id, f"__all__ lists {entry!r} twice"
                    )
                )
            seen.add(entry)
        bound = _bound_names(tree)
        for entry in sorted(seen - bound):
            findings.append(
                module.finding(
                    all_node,
                    self.id,
                    f"__all__ entry {entry!r} is not defined in the module",
                )
            )
        missing = [n.name for n in public_defs if n.name not in seen]
        for name in missing:
            findings.append(
                module.finding(
                    all_node,
                    self.id,
                    f"public definition {name!r} is missing from __all__",
                )
            )
        return findings
