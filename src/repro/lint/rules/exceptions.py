"""R4 — exception hygiene.

Two invariants:

* **No invisible failure paths.**  A bare ``except:`` is always wrong.
  A broad ``except Exception``/``BaseException`` is flagged even when
  it re-raises: the chaos-hardening work (PR 1) showed that every
  intentional broad catch deserves a written justification, so the rule
  requires either narrowing to a concrete type or an explicit
  ``# deshlint: allow[R4] reason`` annotation.  The message
  distinguishes outright *swallowing* (no re-raise, no structured
  logging in the handler) from an intentional-looking wrap-and-reraise.

* **Typed errors only.**  ``raise ValueError(...)`` and friends inside
  ``src/repro`` bypass the :mod:`repro.errors` hierarchy that callers
  (and the CLI's single ``except ReproError``) rely on.
"""

from __future__ import annotations

import ast
from typing import Iterable, List

from ..findings import Finding
from ..names import resolve_dotted, build_import_map
from . import ModuleInfo, Rule, register

__all__ = ["ExceptionHygieneRule"]

_BROAD = {"Exception", "BaseException"}

#: Builtin exceptions that must not be raised directly; repro code
#: raises the matching ``repro.errors`` subclass instead.
_BUILTIN_RAISES = {
    "Exception", "BaseException", "ValueError", "TypeError", "RuntimeError",
    "KeyError", "IndexError", "LookupError", "AttributeError", "OSError",
    "IOError", "ArithmeticError", "ZeroDivisionError", "OverflowError",
    "FileNotFoundError", "PermissionError", "TimeoutError", "ConnectionError",
    "MemoryError", "UnicodeError", "EOFError", "BufferError",
}

#: Logger-ish receivers whose calls count as structured logging.
_LOG_RECEIVERS = {"log", "logger", "logging"}
_LOG_METHODS = {"debug", "info", "warning", "error", "exception", "critical"}


def _names_in_type(node: "ast.AST | None") -> List[str]:
    """Exception class names captured by one handler's type expression."""
    if node is None:
        return []
    nodes = node.elts if isinstance(node, ast.Tuple) else [node]
    out = []
    for n in nodes:
        if isinstance(n, ast.Name):
            out.append(n.id)
        elif isinstance(n, ast.Attribute):
            out.append(n.attr)
    return out


def _handler_reraises(handler: ast.ExceptHandler) -> bool:
    """Whether the handler body contains any ``raise``."""
    return any(isinstance(n, ast.Raise) for n in ast.walk(handler))


def _handler_logs(handler: ast.ExceptHandler) -> bool:
    """Whether the handler calls a recognizable structured logger."""
    for node in ast.walk(handler):
        if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)):
            continue
        if node.func.attr not in _LOG_METHODS:
            continue
        recv = node.func.value
        while isinstance(recv, ast.Attribute):
            recv = recv.value
        if isinstance(recv, ast.Name) and recv.id.lower() in _LOG_RECEIVERS:
            return True
    return False


@register
class ExceptionHygieneRule(Rule):
    """Broad catches need justification; raises must be repro.errors types."""

    id = "R4"
    summary = (
        "no bare except; broad `except Exception` needs narrowing or an "
        "allow[R4] reason; raise repro.errors types, not builtins"
    )

    def check_module(self, module: ModuleInfo) -> Iterable[Finding]:
        """Flag bare/broad handlers and raises of builtin exceptions."""
        imap = build_import_map(module.tree, module.module_path)
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ExceptHandler):
                if node.type is None:
                    findings.append(
                        module.finding(
                            node,
                            self.id,
                            "bare `except:` catches everything including "
                            "KeyboardInterrupt; name the exception type",
                        )
                    )
                    continue
                broad = [n for n in _names_in_type(node.type) if n in _BROAD]
                if not broad:
                    continue
                if _handler_reraises(node) or _handler_logs(node):
                    message = (
                        f"broad `except {broad[0]}` — narrow it to the "
                        "failure you expect, or annotate the intent with "
                        "`# deshlint: allow[R4] reason`"
                    )
                else:
                    message = (
                        f"broad `except {broad[0]}` swallows the failure "
                        "without re-raise or logging; narrow it and surface "
                        "the error through repro.errors"
                    )
                findings.append(module.finding(node, self.id, message))
            elif isinstance(node, ast.Raise) and node.exc is not None:
                exc = node.exc
                if isinstance(exc, ast.Call):
                    exc = exc.func
                dotted = resolve_dotted(exc, imap)
                name = dotted.rsplit(".", 1)[-1] if dotted else None
                if dotted is not None and name in _BUILTIN_RAISES and (
                    dotted == name or dotted == f"builtins.{name}"
                ):
                    findings.append(
                        module.finding(
                            node,
                            self.id,
                            f"raise {name} directly escapes the typed "
                            "repro.errors hierarchy; raise the matching "
                            "ReproError subclass",
                        )
                    )
        return findings
