"""R3 — determinism hygiene: no hash-order iteration over sets.

Set iteration order depends on ``PYTHONHASHSEED`` for str keys, so a
``for x in {...}`` (or ``list(set(...))``) feeding anything serialized
or fingerprinted produces artifacts that differ between interpreter
runs — exactly the cross-process instability the fingerprint cache
cannot tolerate.  Order-insensitive reductions (``len``, ``sum``,
``min``/``max``, ``any``/``all``, membership tests, ``sorted``) are
fine; everything that *materializes an order* from a set must go
through ``sorted(...)``.

The rule is syntactic: it recognizes expressions that are certainly
sets (literals, comprehensions, ``set()``/``frozenset()`` calls and
set-algebra method calls) and flags ordered consumption of them.
Set-typed *variables* are invisible to it — the cross-process
``PYTHONHASHSEED`` test in tier-1 backstops that gap end to end.
"""

from __future__ import annotations

import ast
from typing import Iterable, List

from ..findings import Finding
from . import ModuleInfo, Rule, register

__all__ = ["SetOrderRule"]

#: Receiver methods returning a set whose order then leaks.
_SET_ALGEBRA = {"union", "intersection", "difference", "symmetric_difference"}

#: Callables that consume their argument as an ordered sequence.
_ORDERED_CONSUMERS = {"list", "tuple", "enumerate", "iter", "reversed"}


def _is_set_expr(node: ast.AST) -> bool:
    """Whether *node* is syntactically certain to evaluate to a set."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        if isinstance(node.func, ast.Name) and node.func.id in ("set", "frozenset"):
            return True
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in _SET_ALGEBRA
            and _is_set_expr(node.func.value)
        ):
            return True
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        return _is_set_expr(node.left) or _is_set_expr(node.right)
    return False


@register
class SetOrderRule(Rule):
    """Ordered consumption of a set must go through ``sorted(...)``."""

    id = "R3"
    summary = (
        "no iteration/sequencing of bare sets (hash-order leaks into "
        "serialized and fingerprinted output); wrap in sorted(...)"
    )

    def check_module(self, module: ModuleInfo) -> Iterable[Finding]:
        """Flag for-loops, comprehensions and conversions over bare sets."""
        findings: List[Finding] = []

        def flag(node: ast.AST, how: str) -> None:
            findings.append(
                module.finding(
                    node,
                    self.id,
                    f"{how} iterates a set in hash order "
                    "(PYTHONHASHSEED-dependent); wrap it in sorted(...)",
                )
            )

        for node in ast.walk(module.tree):
            if isinstance(node, (ast.For, ast.AsyncFor)) and _is_set_expr(
                node.iter
            ):
                flag(node.iter, "for-loop")
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
            ):
                for gen in node.generators:
                    if _is_set_expr(gen.iter):
                        flag(gen.iter, "comprehension")
            elif isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Name)
                    and func.id in _ORDERED_CONSUMERS
                    and node.args
                    and _is_set_expr(node.args[0])
                ):
                    flag(node, f"{func.id}(...)")
                elif (
                    isinstance(func, ast.Attribute)
                    and func.attr == "join"
                    and node.args
                    and _is_set_expr(node.args[0])
                ):
                    flag(node, "str.join(...)")
            elif isinstance(node, ast.Starred) and _is_set_expr(node.value):
                flag(node, "star-unpacking")
        return findings
