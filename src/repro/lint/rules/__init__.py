"""The pluggable deshlint rule engine: rule protocol + registry.

A rule is a subclass of :class:`Rule` registered with :func:`register`.
Rules see the repo through :class:`ModuleInfo` snapshots (path, source,
parsed AST) and report :class:`~repro.lint.findings.Finding` objects
from one or both hooks:

* :meth:`Rule.check_module` — independent per-module checks;
* :meth:`Rule.check_project` — whole-program checks that need every
  module at once (R2's stage-purity reachability analysis).

Importing this package loads the built-in rules R1–R5, the dataflow
rules F1–F6 and the performance rules P1–P3; external code can register
additional rules before calling the engine.  Every rule carries a
``category`` — ``"syntactic"`` for AST pattern checks, ``"dataflow"``
for the CFG/fixpoint analyses under :mod:`repro.lint.flow`, ``"perf"``
for the CFG-backed performance smells under :mod:`repro.lint.perf` —
which the CLI uses to group ``--rules list`` output and the benchmark
uses to time the passes separately.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Sequence, Type

from ...errors import LintError
from ..findings import Finding, RelatedSite

__all__ = [
    "CATEGORIES",
    "ModuleInfo",
    "Rule",
    "register",
    "all_rules",
    "get_rules",
    "rules_by_category",
]

#: Valid rule categories, in display order.
CATEGORIES = ("syntactic", "dataflow", "perf")


@dataclass
class ModuleInfo:
    """One parsed source module as seen by the rules."""

    path: str
    source: str
    tree: ast.Module
    module_path: str = ""  # dotted import path, when derivable

    @property
    def lines(self) -> list[str]:
        """Source split into lines (1-indexed access via ``line(n)``)."""
        if not hasattr(self, "_lines"):
            self._lines = self.source.splitlines()
        return self._lines

    def line(self, n: int) -> str:
        """Text of 1-indexed source line *n* ('' when out of range)."""
        return self.lines[n - 1] if 1 <= n <= len(self.lines) else ""

    def finding(
        self,
        node: ast.AST,
        rule: str,
        message: str,
        related: tuple = (),
    ) -> Finding:
        """Build a finding anchored at *node*."""
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0) + 1
        return Finding(
            path=self.path,
            line=line,
            col=col,
            rule=rule,
            message=message,
            snippet=self.line(line),
            related=related,
        )

    def site(self, node: ast.AST, message: str) -> "RelatedSite":
        """Build a :class:`RelatedSite` anchored at *node*."""
        return RelatedSite(
            path=self.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
        )


class Rule:
    """Base class for deshlint rules."""

    #: Short stable identifier used in findings, suppressions, baselines.
    id: str = ""
    #: One-line description shown by ``repro lint --rules list`` and docs.
    summary: str = ""
    #: Analysis family: "syntactic" (AST patterns), "dataflow" (CFG
    #: fixpoint analyses) or "perf" (CFG-backed performance smells).
    category: str = "syntactic"

    def check_module(self, module: ModuleInfo) -> Iterable[Finding]:
        """Findings derivable from one module in isolation."""
        return ()

    def check_project(self, modules: Sequence[ModuleInfo]) -> Iterable[Finding]:
        """Findings that need the whole module set (cross-file analysis)."""
        return ()


_REGISTRY: dict[str, Type[Rule]] = {}


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global registry.

    Rejects duplicate ids and unknown categories at registration time —
    a colliding id would silently shadow an existing rule's findings,
    suppressions and baseline entries.
    """
    if not cls.id:
        raise LintError(f"rule {cls.__name__} has no id")
    if cls.id in _REGISTRY:
        raise LintError(f"duplicate rule id {cls.id!r}")
    if cls.category not in CATEGORIES:
        raise LintError(
            f"rule {cls.id!r} has unknown category {cls.category!r} "
            f"(have: {', '.join(CATEGORIES)})"
        )
    _REGISTRY[cls.id] = cls
    return cls


def all_rules() -> list[Rule]:
    """Fresh instances of every registered rule, sorted by id."""
    return [_REGISTRY[rule_id]() for rule_id in sorted(_REGISTRY)]


def get_rules(ids: Iterable[str]) -> list[Rule]:
    """Fresh instances of the named rules; unknown or repeated ids raise.

    A repeated id would run the rule twice and double-report every
    finding, so ``--rules R2,R2`` is a usage error, not a no-op.
    """
    out = []
    seen = set()
    for rule_id in ids:
        if rule_id not in _REGISTRY:
            known = ", ".join(sorted(_REGISTRY))
            raise LintError(f"unknown rule {rule_id!r} (have: {known})")
        if rule_id in seen:
            raise LintError(f"rule {rule_id!r} requested more than once")
        seen.add(rule_id)
        out.append(_REGISTRY[rule_id]())
    return out


def rules_by_category() -> dict[str, list[Rule]]:
    """Fresh rule instances grouped by category, ids sorted within each."""
    out: dict[str, list[Rule]] = {category: [] for category in CATEGORIES}
    for rule in all_rules():
        out[rule.category].append(rule)
    return out


# Built-in rules register themselves on import.  The dataflow rules live
# under repro.lint.flow (they share the CFG/solver machinery) but hook
# into the same registry.
from . import api, determinism, exceptions, purity, rng  # noqa: E402,F401
from ..flow import (  # noqa: E402,F401
    atomicity,
    blocking,
    capture,
    orphan,
    shapeflow,
    stageflow,
)
from ..perf import (  # noqa: E402,F401
    p1_vectorize,
    p2_hoist,
    p3_quadratic,
)
