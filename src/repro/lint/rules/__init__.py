"""The pluggable deshlint rule engine: rule protocol + registry.

A rule is a subclass of :class:`Rule` registered with :func:`register`.
Rules see the repo through :class:`ModuleInfo` snapshots (path, source,
parsed AST) and report :class:`~repro.lint.findings.Finding` objects
from one or both hooks:

* :meth:`Rule.check_module` — independent per-module checks;
* :meth:`Rule.check_project` — whole-program checks that need every
  module at once (R2's stage-purity reachability analysis).

Importing this package loads the built-in rules R1–R5; external code
can register additional rules before calling the engine.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Sequence, Type

from ...errors import LintError
from ..findings import Finding

__all__ = [
    "ModuleInfo",
    "Rule",
    "register",
    "all_rules",
    "get_rules",
]


@dataclass
class ModuleInfo:
    """One parsed source module as seen by the rules."""

    path: str
    source: str
    tree: ast.Module
    module_path: str = ""  # dotted import path, when derivable

    @property
    def lines(self) -> list[str]:
        """Source split into lines (1-indexed access via ``line(n)``)."""
        if not hasattr(self, "_lines"):
            self._lines = self.source.splitlines()
        return self._lines

    def line(self, n: int) -> str:
        """Text of 1-indexed source line *n* ('' when out of range)."""
        return self.lines[n - 1] if 1 <= n <= len(self.lines) else ""

    def finding(self, node: ast.AST, rule: str, message: str) -> Finding:
        """Build a finding anchored at *node*."""
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0) + 1
        return Finding(
            path=self.path,
            line=line,
            col=col,
            rule=rule,
            message=message,
            snippet=self.line(line),
        )


class Rule:
    """Base class for deshlint rules."""

    #: Short stable identifier used in findings, suppressions, baselines.
    id: str = ""
    #: One-line description shown by ``repro lint --rules help`` and docs.
    summary: str = ""

    def check_module(self, module: ModuleInfo) -> Iterable[Finding]:
        """Findings derivable from one module in isolation."""
        return ()

    def check_project(self, modules: Sequence[ModuleInfo]) -> Iterable[Finding]:
        """Findings that need the whole module set (cross-file analysis)."""
        return ()


_REGISTRY: dict[str, Type[Rule]] = {}


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if not cls.id:
        raise LintError(f"rule {cls.__name__} has no id")
    if cls.id in _REGISTRY:
        raise LintError(f"duplicate rule id {cls.id!r}")
    _REGISTRY[cls.id] = cls
    return cls


def all_rules() -> list[Rule]:
    """Fresh instances of every registered rule, sorted by id."""
    return [_REGISTRY[rule_id]() for rule_id in sorted(_REGISTRY)]


def get_rules(ids: Iterable[str]) -> list[Rule]:
    """Fresh instances of the named rules; unknown ids raise."""
    out = []
    for rule_id in ids:
        if rule_id not in _REGISTRY:
            known = ", ".join(sorted(_REGISTRY))
            raise LintError(f"unknown rule {rule_id!r} (have: {known})")
        out.append(_REGISTRY[rule_id]())
    return out


# Built-in rules register themselves on import.
from . import api, determinism, exceptions, purity, rng  # noqa: E402,F401
