"""R1 — RNG discipline.

The reproduction's bit-for-bit determinism rests on every random draw
flowing through an explicitly seeded :class:`numpy.random.Generator`
(threaded via :mod:`repro.rng`).  Module-level NumPy samplers
(``np.random.randint``/``seed``/...) and the stdlib :mod:`random`
module share hidden global state, so one stray call silently couples
unrelated subsystems and breaks fingerprint-cache bit-identity.
"""

from __future__ import annotations

import ast
from typing import Iterable, List

from ..findings import Finding
from ..names import build_import_map, resolve_dotted
from . import ModuleInfo, Rule, register

__all__ = ["RngDisciplineRule"]

#: ``numpy.random`` attributes that are fine to reference: the
#: Generator API and the seeding machinery it is built from.
_ALLOWED_NP_RANDOM = {
    "Generator",
    "default_rng",
    "SeedSequence",
    "BitGenerator",
    "PCG64",
    "PCG64DXSM",
    "Philox",
    "SFC64",
    "MT19937",
}


@register
class RngDisciplineRule(Rule):
    """Only explicit ``np.random.Generator`` streams may produce randomness."""

    id = "R1"
    summary = (
        "no stdlib `random`, no module-level np.random samplers; thread "
        "seeded np.random.Generator objects explicitly"
    )

    def check_module(self, module: ModuleInfo) -> Iterable[Finding]:
        """Flag stdlib-random imports and legacy ``np.random`` references."""
        imap = build_import_map(module.tree, module.module_path)
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random" or alias.name.startswith("random."):
                        findings.append(
                            module.finding(
                                node,
                                self.id,
                                "stdlib `random` shares hidden global state; "
                                "use a seeded np.random.Generator "
                                "(repro.rng.RngFactory)",
                            )
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.level == 0 and node.module == "random":
                    findings.append(
                        module.finding(
                            node,
                            self.id,
                            "stdlib `random` shares hidden global state; "
                            "use a seeded np.random.Generator "
                            "(repro.rng.RngFactory)",
                        )
                    )
                elif node.level == 0 and node.module == "numpy.random":
                    for alias in node.names:
                        if alias.name not in _ALLOWED_NP_RANDOM:
                            findings.append(
                                module.finding(
                                    node,
                                    self.id,
                                    f"numpy.random.{alias.name} draws from "
                                    "the global NumPy RNG; use "
                                    "default_rng(seed) and pass the "
                                    "Generator explicitly",
                                )
                            )
            elif isinstance(node, ast.Attribute):
                dotted = resolve_dotted(node, imap)
                if (
                    dotted is not None
                    and dotted.startswith("numpy.random.")
                    and dotted.count(".") == 2
                ):
                    attr = dotted.rsplit(".", 1)[1]
                    if attr not in _ALLOWED_NP_RANDOM:
                        findings.append(
                            module.finding(
                                node,
                                self.id,
                                f"{dotted} uses the global NumPy RNG; use "
                                "default_rng(seed) and pass the Generator "
                                "explicitly",
                            )
                        )
        return findings
