"""R2 — stage purity.

The fingerprint cache (PR 2) assumes a stage's output is a pure
function of ``(config payload, upstream fingerprints, data
fingerprint)``.  Any wall-clock read, environment read, or OS-level
entropy inside code reachable from a ``Stage.run`` implementation makes
a cached artifact diverge from a fresh run — silently, because the
fingerprint cannot see it.  Likewise, a ``run`` that mutates its
:class:`~repro.pipeline.stage.StageContext` (config, records, upstream
inputs) poisons every stage downstream of it.

The reachability analysis is a deliberately *over-approximate* static
call graph: bare names, ``self.``/class methods and imported project
functions resolve precisely; an unresolvable ``obj.meth(...)`` call
conservatively links to every project method named ``meth``.  False
positives are expected to be rare and are silenced with an explicit
``# deshlint: allow[R2] reason`` at the impure call site.
"""

from __future__ import annotations

import ast
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence, Set, Tuple

from ..findings import Finding
from ..names import ImportMap, build_import_map, resolve_dotted
from . import ModuleInfo, Rule, register

__all__ = ["StagePurityRule"]

#: Dotted call targets that poison fingerprint-cache correctness.
_FORBIDDEN_CALLS = {
    "time.time": "reads the wall clock",
    "time.time_ns": "reads the wall clock",
    "datetime.datetime.now": "reads the wall clock",
    "datetime.datetime.utcnow": "reads the wall clock",
    "datetime.datetime.today": "reads the wall clock",
    "datetime.date.today": "reads the wall clock",
    "os.environ": "reads the process environment",
    "os.getenv": "reads the process environment",
    "os.environb": "reads the process environment",
    "os.urandom": "draws OS entropy",
    "uuid.uuid4": "draws OS entropy",
    "secrets.token_bytes": "draws OS entropy",
    "secrets.token_hex": "draws OS entropy",
}

#: Method names that mutate their receiver in place.
_MUTATORS = {
    "append", "extend", "insert", "remove", "pop", "popitem", "clear",
    "update", "setdefault", "sort", "reverse", "add", "discard",
}


@dataclass
class _Func:
    """One function/method definition node plus its resolution context."""

    qualname: str  # "module:Class.method" or "module:function"
    name: str
    cls: "str | None"
    module: ModuleInfo
    node: ast.AST
    imap: ImportMap
    calls: Set[str] = field(default_factory=set)  # resolved qualnames
    unresolved_methods: Set[str] = field(default_factory=set)
    forbidden: List[Tuple[ast.AST, str, str]] = field(default_factory=list)


def _class_defs(tree: ast.Module):
    for node in tree.body:
        if isinstance(node, ast.ClassDef):
            yield node


def _functions_of(module: ModuleInfo, imap: ImportMap) -> List[_Func]:
    """Top-level functions and class methods of one module."""
    out: List[_Func] = []
    mod = module.module_path or module.path
    for node in module.tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            out.append(
                _Func(f"{mod}:{node.name}", node.name, None, module, node, imap)
            )
        elif isinstance(node, ast.ClassDef):
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    out.append(
                        _Func(
                            f"{mod}:{node.name}.{item.name}",
                            item.name,
                            node.name,
                            module,
                            item,
                            imap,
                        )
                    )
    return out


def _stage_classes(modules: Sequence[ModuleInfo]) -> Set[Tuple[str, str]]:
    """(module, class) pairs transitively deriving from a ``Stage`` base.

    Resolution is by base-class *name* iterated to a fixpoint, which is
    robust to import renames without needing full type inference.
    """
    stage_names = {"Stage"}
    by_module: Dict[str, List[ast.ClassDef]] = {}
    for m in modules:
        by_module[m.module_path or m.path] = list(_class_defs(m.tree))
    result: Set[Tuple[str, str]] = set()
    changed = True
    while changed:
        changed = False
        for mod, classes in by_module.items():
            for cls in classes:
                if (mod, cls.name) in result:
                    continue
                for base in cls.bases:
                    base_name = base.attr if isinstance(base, ast.Attribute) else (
                        base.id if isinstance(base, ast.Name) else None
                    )
                    if base_name in stage_names:
                        result.add((mod, cls.name))
                        stage_names.add(cls.name)
                        changed = True
                        break
    return result


def _collect_calls(func: _Func, project: "_Project") -> None:
    """Populate ``func.calls`` / ``unresolved_methods`` / ``forbidden``."""
    for node in ast.walk(func.node):
        if isinstance(node, (ast.Attribute, ast.Name)):
            dotted = resolve_dotted(node, func.imap)
            if dotted in _FORBIDDEN_CALLS:
                func.forbidden.append((node, dotted, _FORBIDDEN_CALLS[dotted]))
        if not isinstance(node, ast.Call):
            continue
        target = node.func
        if isinstance(target, ast.Name):
            resolved = project.resolve_name(func, target.id)
            if resolved:
                func.calls.update(resolved)
        elif isinstance(target, ast.Attribute):
            if (
                isinstance(target.value, ast.Name)
                and target.value.id == "self"
                and func.cls is not None
            ):
                qn = f"{func.module.module_path or func.module.path}:{func.cls}.{target.attr}"
                if qn in project.funcs:
                    func.calls.add(qn)
                continue
            dotted = resolve_dotted(target, func.imap)
            resolved = project.resolve_dotted_call(dotted) if dotted else set()
            if resolved:
                func.calls.update(resolved)
            else:
                func.unresolved_methods.add(target.attr)


class _Project:
    """Whole-program index: functions, classes, and name resolution."""

    def __init__(self, modules: Sequence[ModuleInfo]) -> None:
        self.modules = modules
        self.funcs: Dict[str, _Func] = {}
        self.by_method_name: Dict[str, Set[str]] = {}
        self.class_index: Set[Tuple[str, str]] = set()
        self.imaps: Dict[str, ImportMap] = {}
        for m in modules:
            mod = m.module_path or m.path
            imap = build_import_map(m.tree, mod)
            self.imaps[mod] = imap
            for cls in _class_defs(m.tree):
                self.class_index.add((mod, cls.name))
            for func in _functions_of(m, imap):
                self.funcs[func.qualname] = func
                if func.cls is not None:
                    self.by_method_name.setdefault(func.name, set()).add(
                        func.qualname
                    )
        for func in self.funcs.values():
            _collect_calls(func, self)

    # ------------------------------------------------------------------
    def resolve_name(self, caller: _Func, name: str) -> Set[str]:
        """A bare-name call: same-module function, import, or class init."""
        mod = caller.module.module_path or caller.module.path
        if f"{mod}:{name}" in self.funcs:
            return {f"{mod}:{name}"}
        if (mod, name) in self.class_index:
            return self._class_init(mod, name)
        origin = caller.imap.names.get(name)
        if origin:
            return self.resolve_dotted_call(origin) or set()
        return set()

    def resolve_dotted_call(self, dotted: str) -> Set[str]:
        """``pkg.mod.func`` or ``pkg.mod.Class`` -> project qualnames."""
        if "." not in dotted:
            return set()
        mod, _, attr = dotted.rpartition(".")
        if f"{mod}:{attr}" in self.funcs:
            return {f"{mod}:{attr}"}
        if (mod, attr) in self.class_index:
            return self._class_init(mod, attr)
        return set()

    def _class_init(self, mod: str, cls: str) -> Set[str]:
        qn = f"{mod}:{cls}.__init__"
        return {qn} if qn in self.funcs else set()

    # ------------------------------------------------------------------
    def reachable_from(self, roots: Iterable[str]) -> Dict[str, List[str]]:
        """BFS closure over the call graph; qualname -> example chain."""
        chains: Dict[str, List[str]] = {}
        queue = deque()
        for root in roots:
            chains[root] = [root]
            queue.append(root)
        while queue:
            current = queue.popleft()
            func = self.funcs[current]
            targets = set(func.calls)
            for meth in func.unresolved_methods:
                targets.update(self.by_method_name.get(meth, ()))
            for target in targets:
                if target not in chains and target in self.funcs:
                    chains[target] = chains[current] + [target]
                    queue.append(target)
        return chains


def _ctx_param(node: ast.AST) -> "str | None":
    """Name of the context parameter of a ``run(self, ctx)`` method."""
    args = getattr(node, "args", None)
    if args is None:
        return None
    names = [a.arg for a in args.args]
    if len(names) >= 2 and names[0] == "self":
        return names[1]
    return None


def _rooted_in(node: ast.AST, name: str) -> bool:
    """Whether an attribute/subscript chain hangs off Name *name*."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    return isinstance(node, ast.Name) and node.id == name


@register
class StagePurityRule(Rule):
    """Code reachable from ``Stage.run`` must be deterministic and side-effect free."""

    id = "R2"
    summary = (
        "no wall-clock / environment / OS-entropy reads reachable from "
        "Stage.run; run() must not mutate its StageContext"
    )

    def check_project(self, modules: Sequence[ModuleInfo]) -> Iterable[Finding]:
        """Reachability pass from every Stage.run over the project call graph."""
        project = _Project(modules)
        stage_classes = _stage_classes(modules)
        roots = []
        run_nodes = []
        for mod, cls in stage_classes:
            qn = f"{mod}:{cls}.run"
            if qn in project.funcs:
                roots.append(qn)
                run_nodes.append(project.funcs[qn])
        if not roots:
            return []
        findings: List[Finding] = []
        chains = project.reachable_from(roots)
        reported: Set[Tuple[str, int, str]] = set()
        for qualname in sorted(chains):
            func = project.funcs[qualname]
            for node, dotted, why in func.forbidden:
                site = (func.module.path, getattr(node, "lineno", 0), dotted)
                if site in reported:
                    continue
                reported.add(site)
                chain = " -> ".join(q.split(":", 1)[1] for q in chains[qualname])
                findings.append(
                    func.module.finding(
                        node,
                        self.id,
                        f"{dotted} {why}; reachable from Stage.run "
                        f"via {chain} — impure stages poison the "
                        "fingerprint cache",
                    )
                )
        for func in run_nodes:
            findings.extend(self._mutation_findings(func))
        return findings

    def _mutation_findings(self, func: _Func) -> List[Finding]:
        """Flag writes to the StageContext inside one run() body."""
        ctx = _ctx_param(func.node)
        if ctx is None:
            return []
        out: List[Finding] = []
        for node in ast.walk(func.node):
            targets: List[ast.AST] = []
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            elif isinstance(node, ast.Delete):
                targets = list(node.targets)
            for target in targets:
                if isinstance(
                    target, (ast.Attribute, ast.Subscript)
                ) and _rooted_in(target, ctx):
                    out.append(
                        func.module.finding(
                            node,
                            self.id,
                            f"Stage.run mutates its context "
                            f"({ast.unparse(target)}); stages must treat "
                            "config/records/inputs as read-only",
                        )
                    )
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _MUTATORS
                and _rooted_in(node.func.value, ctx)
            ):
                out.append(
                    func.module.finding(
                        node,
                        self.id,
                        f"Stage.run calls mutating "
                        f"{ast.unparse(node.func)}(); stages must treat "
                        "config/records/inputs as read-only",
                    )
                )
        return out
