"""deshlint driver: discover files, run rules, apply suppressions + baseline.

:func:`lint_paths` is the whole programmatic API surface: it walks the
given files/directories, parses each module once, runs every registered
rule (module-local hooks first, then whole-project hooks such as R2's
reachability pass), drops findings covered by inline
``# deshlint: allow[RULE] reason`` comments, and finally splits what
remains against the checked-in baseline.  :func:`lint_source` wraps a
single in-memory snippet — the unit-test entry point.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, List, Optional, Sequence

from ..errors import LintError
from .baseline import Baseline
from .findings import Finding
from .rules import ModuleInfo, Rule, all_rules
from .suppressions import parse_suppressions

__all__ = [
    "LintReport",
    "lint_paths",
    "lint_modules",
    "lint_source",
    "load_modules",
]

_SKIP_DIRS = {"__pycache__", ".git", ".venv", "build", "dist"}


@dataclass
class LintReport:
    """Outcome of one lint run."""

    findings: List[Finding] = field(default_factory=list)
    baselined: List[Finding] = field(default_factory=list)
    modules: int = 0

    @property
    def ok(self) -> bool:
        """Whether the run produced zero non-baselined findings."""
        return not self.findings

    def to_dict(self) -> dict:
        """JSON-serializable form (used by ``repro lint --json``)."""
        return {
            "ok": self.ok,
            "modules": self.modules,
            "findings": [f.to_dict() for f in self.findings],
            "baselined": len(self.baselined),
        }


def _iter_files(paths: Iterable["str | Path"]) -> List[Path]:
    files: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                if not _SKIP_DIRS.intersection(candidate.parts):
                    files.append(candidate)
        elif path.is_file():
            files.append(path)
        else:
            raise LintError(f"no such file or directory: {path}")
    return files


def _module_path(path: Path) -> str:
    """Dotted import path for *path*, anchored at the innermost package root."""
    parts = [path.stem] if path.stem != "__init__" else []
    parent = path.parent
    while (parent / "__init__.py").exists():
        parts.insert(0, parent.name)
        parent = parent.parent
    return ".".join(parts)


def load_modules(paths: Iterable["str | Path"]) -> "tuple[list[ModuleInfo], list[Finding]]":
    """Parse every Python file under *paths*; unparsable files become findings."""
    modules: List[ModuleInfo] = []
    errors: List[Finding] = []
    for path in _iter_files(paths):
        try:
            source = path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as exc:
            raise LintError(f"cannot read {path}: {exc}") from exc
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as exc:
            errors.append(
                Finding(
                    path=str(path),
                    line=exc.lineno or 1,
                    col=(exc.offset or 0) + 1,
                    rule="SYNTAX",
                    message=f"cannot parse: {exc.msg}",
                    snippet=(exc.text or "").rstrip(),
                )
            )
            continue
        modules.append(
            ModuleInfo(
                path=str(path),
                source=source,
                tree=tree,
                module_path=_module_path(path),
            )
        )
    return modules, errors


def _module_findings_task(
    payload: "tuple[str, str, str, tuple[str, ...]]",
) -> List[Finding]:
    """Pool worker: per-module hooks of the named rules over one file.

    Takes everything it needs through its payload (path, source, dotted
    module path, rule ids) and returns the findings — no captured
    state, so the engine itself stays F3-clean.  The source is
    re-parsed here because AST trees are cheaper to rebuild in the
    worker than to pickle across a process boundary; fresh rule
    instances come from the registry, which process workers populate by
    importing this package.
    """
    path, source, module_path, rule_ids = payload
    from .rules import get_rules

    module = ModuleInfo(
        path=path,
        source=source,
        tree=ast.parse(source, filename=path),
        module_path=module_path,
    )
    out: List[Finding] = []
    for rule in get_rules(rule_ids):
        out.extend(rule.check_module(module))
    return out


def _run_rules(
    modules: Sequence[ModuleInfo], rules: Sequence[Rule], jobs: int = 1
) -> List[Finding]:
    findings: List[Finding] = []
    registered = {type(rule).id for rule in rules} <= set(
        rule.id for rule in all_rules()
    )
    if jobs > 1 and len(modules) > 1 and registered:
        from ..parallel.pool import ordered_parallel_map

        rule_ids = tuple(sorted(rule.id for rule in rules))
        payloads = [
            (m.path, m.source, m.module_path, rule_ids) for m in modules
        ]
        for chunk in ordered_parallel_map(
            _module_findings_task, payloads, max_workers=jobs, mode="process"
        ):
            findings.extend(chunk)
    else:
        for module in modules:
            for rule in rules:
                findings.extend(rule.check_module(module))
    # Whole-project hooks (R2/F5 reachability) need every module at
    # once and run serially in the parent either way.
    for rule in rules:
        findings.extend(rule.check_project(modules))
    return findings


def _apply_suppressions(
    modules: Sequence[ModuleInfo], findings: List[Finding]
) -> List[Finding]:
    indexes = {m.path: parse_suppressions(m.source) for m in modules}
    kept: List[Finding] = []
    for f in findings:
        index = indexes.get(f.path)
        if index is not None and index.covers(f.line, f.rule):
            continue
        kept.append(f)
    for module in modules:
        kept.extend(indexes[module.path].malformed(module.path, module.lines))
    return kept


def lint_modules(
    modules: Sequence[ModuleInfo],
    *,
    rules: Optional[Sequence[Rule]] = None,
    baseline: Optional[Baseline] = None,
    parse_errors: Sequence[Finding] = (),
    jobs: int = 1,
) -> LintReport:
    """Run *rules* over already-parsed modules (the core of the engine).

    ``jobs > 1`` fans the per-module hooks out over a process pool via
    ``ordered_parallel_map``; project-wide hooks and the final
    suppression/baseline/sort passes stay in the parent, so the report
    is byte-identical to a serial run.
    """
    rules = list(rules) if rules is not None else all_rules()
    findings = list(parse_errors)
    findings.extend(_run_rules(modules, rules, jobs=jobs))
    findings = _apply_suppressions(modules, findings)
    findings.sort()
    if baseline is not None:
        fresh, grandfathered = baseline.filter(findings)
    else:
        fresh, grandfathered = findings, []
    return LintReport(
        findings=fresh, baselined=grandfathered, modules=len(modules)
    )


def lint_paths(
    paths: Iterable["str | Path"],
    *,
    rules: Optional[Sequence[Rule]] = None,
    baseline: Optional[Baseline] = None,
    jobs: int = 1,
) -> LintReport:
    """Lint every Python file under *paths* with the registered rules."""
    modules, parse_errors = load_modules(paths)
    return lint_modules(
        modules,
        rules=rules,
        baseline=baseline,
        parse_errors=parse_errors,
        jobs=jobs,
    )


def lint_source(
    source: str,
    *,
    path: str = "<snippet>",
    module_path: str = "snippet",
    rules: Optional[Sequence[Rule]] = None,
) -> List[Finding]:
    """Lint one in-memory source snippet; returns its findings.

    The snippet is parsed as a stand-alone module, so project-wide rules
    (R2) see exactly this one module.  Raises :class:`LintError` when
    the snippet does not parse — unit tests should feed valid Python.
    """
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        raise LintError(f"snippet does not parse: {exc}") from exc
    module = ModuleInfo(
        path=path, source=source, tree=tree, module_path=module_path
    )
    report = lint_modules([module], rules=rules)
    return report.findings
