"""deshlint — AST-based invariant checking for the Desh reproduction.

The reproduction's trust chain (30/70 split, per-phase seeds, PR-1
checkpoint bit-identity, PR-2 fingerprint-cache correctness) depends on
invariants no test exercises directly: seeded RNG threading, pure
pipeline stages, hash-order-free serialization, typed errors, and an
honest public API.  deshlint machine-enforces them:

=====  ==============================================================
R1     RNG discipline — no stdlib ``random``, no module-level
       ``np.random`` samplers; thread ``np.random.Generator`` objects.
R2     Stage purity — nothing reachable from a ``Stage.run`` may read
       the wall clock, the environment or OS entropy; ``run`` must not
       mutate its ``StageContext``.
R3     Determinism hygiene — no hash-order iteration over bare sets.
R4     Exception hygiene — no bare excepts; broad catches need an
       ``allow[R4]`` justification; raise ``repro.errors`` types.
R5     Public API — docstrings + truthful ``__all__`` everywhere.
=====  ==============================================================

On top of the syntactic rules, the :mod:`repro.lint.flow` package adds
dataflow analyses — a per-function CFG builder, a generic worklist
fixpoint solver and pluggable abstract domains — registered as rules
in the same engine:

=====  ==============================================================
F1     Shape flow — abstract-interpret numpy/``repro.nn`` code against
       the declared ``@tensor_contract`` specs; report *provable*
       shape/dtype mismatches with the inferred shape chain.
F2     Stage artifact flow — ``ctx.value()`` reads must be declared
       deps with a producer of a compatible type; non-terminal
       artifacts must have a consumer.
F3     Parallel capture — workers given to ``ordered_parallel_map``
       must not mutate captured shared state (lists, dicts, ndarrays,
       RNG generators).
=====  ==============================================================

Findings are suppressed inline with ``# deshlint: allow[RULE] reason``
(reason mandatory) or grandfathered via a checked-in baseline file;
``repro lint --sarif`` exports SARIF 2.1.0 for GitHub code scanning.
See ``repro lint --help`` and the README's "Static analysis" section.
"""

from .baseline import Baseline
from .engine import LintReport, lint_modules, lint_paths, lint_source, load_modules
from .findings import Finding
from .rules import (
    ModuleInfo,
    Rule,
    all_rules,
    get_rules,
    register,
    rules_by_category,
)
from .sarif import sarif_log, write_sarif
from .suppressions import Suppression, SuppressionIndex, parse_suppressions

__all__ = [
    "Baseline",
    "Finding",
    "LintReport",
    "ModuleInfo",
    "Rule",
    "Suppression",
    "SuppressionIndex",
    "all_rules",
    "get_rules",
    "lint_modules",
    "lint_paths",
    "lint_source",
    "load_modules",
    "parse_suppressions",
    "register",
    "rules_by_category",
    "sarif_log",
    "write_sarif",
]
