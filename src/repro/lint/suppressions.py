"""Inline suppression comments: ``# deshlint: allow[RULE] reason``.

A suppression silences findings of the named rule(s) on its own line or,
when the comment stands alone, on the next code line.  The reason text
is mandatory — an ``allow`` without one is itself reported (rule
``SUP``) so suppressions stay auditable.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field

from .findings import Finding

__all__ = ["Suppression", "SuppressionIndex", "parse_suppressions"]

_ALLOW_RE = re.compile(
    r"#\s*deshlint:\s*allow\[(?P<rules>[A-Za-z0-9_,\s]+)\]\s*(?P<reason>.*)$"
)


@dataclass(frozen=True)
class Suppression:
    """One parsed ``allow`` comment.

    ``target`` is the code line the suppression covers: the comment's
    own line for a trailing comment, or — for a comment-only line — the
    next code line below it (intervening comment/blank lines skipped,
    so a justification may span several comment lines).
    """

    line: int
    rules: tuple[str, ...]
    reason: str
    target: int


@dataclass
class SuppressionIndex:
    """All suppressions of one module, queryable per (line, rule)."""

    suppressions: list[Suppression] = field(default_factory=list)

    def covers(self, line: int, rule: str) -> bool:
        """Whether a finding of *rule* at *line* is suppressed."""
        for sup in self.suppressions:
            if rule not in sup.rules or not sup.reason:
                continue
            if line in (sup.line, sup.target):
                return True
        return False

    def malformed(self, path: str, lines: list[str]) -> list[Finding]:
        """``SUP`` findings for every reason-less ``allow`` comment."""
        out = []
        for sup in self.suppressions:
            if sup.reason:
                continue
            snippet = lines[sup.line - 1] if sup.line <= len(lines) else ""
            out.append(
                Finding(
                    path=path,
                    line=sup.line,
                    col=1,
                    rule="SUP",
                    message=(
                        "suppression needs a reason: "
                        f"# deshlint: allow[{','.join(sup.rules)}] <why>"
                    ),
                    snippet=snippet,
                )
            )
        return out


def parse_suppressions(source: str) -> SuppressionIndex:
    """Extract every ``allow`` comment from *source* via the tokenizer.

    Using real COMMENT tokens (not a per-line regex over raw text) means
    an ``allow``-shaped substring inside a string literal is never
    mistaken for a suppression.
    """
    index = SuppressionIndex()
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return index  # unparsable source is reported by the engine instead
    skip_types = {
        tokenize.COMMENT,
        tokenize.NL,
        tokenize.NEWLINE,
        tokenize.INDENT,
        tokenize.DEDENT,
    }
    for pos, tok in enumerate(tokens):
        if tok.type != tokenize.COMMENT:
            continue
        match = _ALLOW_RE.search(tok.string)
        if match is None:
            continue
        rules = tuple(
            r.strip() for r in match.group("rules").split(",") if r.strip()
        )
        target = tok.start[0]
        if tok.string.strip() == tok.line.strip():
            # Comment-only line: cover the next code line below it.
            for later in tokens[pos + 1 :]:
                if later.type not in skip_types and later.type != tokenize.ENDMARKER:
                    target = later.start[0]
                    break
        index.suppressions.append(
            Suppression(
                line=tok.start[0],
                rules=rules,
                reason=match.group("reason").strip(),
                target=target,
            )
        )
    return index
