"""SARIF 2.1.0 export for deshlint reports.

SARIF (Static Analysis Results Interchange Format) is the log format
GitHub code scanning ingests: uploading one turns deshlint findings
into inline PR annotations.  The writer emits a single-run log with

* ``tool.driver`` carrying every rule that *ran* (id, category tag and
  summary), not just the rules that fired — so a clean run still
  documents its coverage;
* one ``result`` per finding with the rule id, message, a
  ``physicalLocation`` region (line/column) and the snippet;
* ``relatedLocations`` for multi-site dataflow findings — F4 renders
  the read/await/write interleaving window, F5 the example call chain
  from the coroutine root — so code scanning annotates every hop, not
  just the reporting line;
* ``partialFingerprints`` reusing :meth:`Finding.key` — the same
  content-keyed identity the baseline uses — so code-scanning alert
  tracking survives unrelated edits exactly like the baseline does.

File URIs are emitted repo-relative with forward slashes whenever the
linted path sits under the current working directory, which is what
the upload action expects.
"""

from __future__ import annotations

import json
from pathlib import Path, PurePosixPath
from typing import Optional, Sequence

from .engine import LintReport
from .rules import Rule

__all__ = ["sarif_log", "write_sarif"]

_SARIF_VERSION = "2.1.0"
_SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)
_TOOL_URI = "https://github.com/desh-repro/desh-repro"


def _relative_uri(path: str, root: Optional[Path]) -> str:
    """*path* as a forward-slash URI, relative to *root* when possible."""
    p = Path(path)
    if root is not None:
        try:
            p = p.resolve().relative_to(root.resolve())
        except (ValueError, OSError):
            pass
    return str(PurePosixPath(*p.parts))


def sarif_log(
    report: LintReport,
    rules: Sequence[Rule],
    *,
    root: Optional[Path] = None,
) -> dict:
    """The SARIF 2.1.0 structure for *report* (rules = what ran)."""
    driver_rules = [
        {
            "id": rule.id,
            "name": type(rule).__name__,
            "shortDescription": {"text": rule.summary},
            "properties": {"category": rule.category},
        }
        for rule in sorted(rules, key=lambda r: r.id)
    ]
    results = []
    for finding in report.findings:
        result = {
            "ruleId": finding.rule,
            "level": "error",
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": _relative_uri(finding.path, root),
                            "uriBaseId": "%SRCROOT%",
                        },
                        "region": {
                            "startLine": finding.line,
                            "startColumn": finding.col,
                            "snippet": {"text": finding.snippet},
                        },
                    }
                }
            ],
            "partialFingerprints": {"deshlintKey/v1": finding.key()},
        }
        if finding.related:
            result["relatedLocations"] = [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": _relative_uri(site.path, root),
                            "uriBaseId": "%SRCROOT%",
                        },
                        "region": {
                            "startLine": site.line,
                            "startColumn": site.col,
                        },
                    },
                    "message": {"text": site.message},
                }
                for site in finding.related
            ]
        results.append(result)
    return {
        "$schema": _SARIF_SCHEMA,
        "version": _SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "deshlint",
                        "informationUri": _TOOL_URI,
                        "rules": driver_rules,
                    }
                },
                "results": results,
            }
        ],
    }


def write_sarif(
    path: str | Path,
    report: LintReport,
    rules: Sequence[Rule],
    *,
    root: Optional[Path] = None,
) -> None:
    """Serialize :func:`sarif_log` to *path* (UTF-8 JSON, one file)."""
    log = sarif_log(report, rules, root=root)
    Path(path).write_text(json.dumps(log, indent=1), encoding="utf-8")
