"""SARIF 2.1.0 export for deshlint reports.

SARIF (Static Analysis Results Interchange Format) is the log format
GitHub code scanning ingests: uploading one turns deshlint findings
into inline PR annotations.  The writer emits a single-run log with

* ``tool.driver`` carrying every rule that *ran* (id, category tag,
  summary, a ``helpUri`` into the README rule table and a
  ``defaultConfiguration.level`` from :data:`CATEGORY_LEVELS`), not
  just the rules that fired — so a clean run still documents its
  coverage;
* one ``result`` per finding with the rule id, message, a
  ``physicalLocation`` region (line/column) and the snippet; the
  result ``level`` is the finding's own (profile-escalated) level when
  set, else the rule category's default — engine pseudo-rules
  (``SYNTAX``, ``SUP``) always gate as ``error``;
* ``relatedLocations`` for multi-site dataflow findings — F4 renders
  the read/await/write interleaving window, F5 the example call chain
  from the coroutine root — so code scanning annotates every hop, not
  just the reporting line;
* ``partialFingerprints`` reusing :meth:`Finding.key` — the same
  content-keyed identity the baseline uses — so code-scanning alert
  tracking survives unrelated edits exactly like the baseline does.

File URIs are emitted repo-relative with forward slashes whenever the
linted path sits under the current working directory, which is what
the upload action expects.
"""

from __future__ import annotations

import json
from pathlib import Path, PurePosixPath
from typing import Optional, Sequence

from .engine import LintReport
from .findings import Finding
from .rules import Rule

__all__ = ["CATEGORY_LEVELS", "finding_level", "sarif_log", "write_sarif"]

_SARIF_VERSION = "2.1.0"
_SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)
_TOOL_URI = "https://github.com/desh-repro/desh-repro"

#: Default SARIF level per rule category.  Perf findings start at
#: ``note`` and only a profile (``repro lint --profile``) escalates
#: them — a cold micro-inefficiency must not gate like a correctness
#: bug.  Syntactic/dataflow rules annotate as ``warning`` in code
#: scanning; the CLI's own exit gate (``--min-level``, default
#: ``note``) still fails on any finding.
CATEGORY_LEVELS = {
    "syntactic": "warning",
    "dataflow": "warning",
    "perf": "note",
}

#: Engine pseudo-rules outside the registry: unparsable files and
#: reason-less suppressions always gate hard.
_PSEUDO_LEVELS = {"SYNTAX": "error", "SUP": "error"}


def finding_level(finding: Finding, category_of: "dict[str, str]") -> str:
    """Effective SARIF level of *finding*.

    The finding's own ``level`` (set by profile escalation) wins;
    otherwise the rule category's default from :data:`CATEGORY_LEVELS`
    applies, with ``SYNTAX``/``SUP`` pinned to ``error``.
    """
    if finding.level:
        return finding.level
    if finding.rule in _PSEUDO_LEVELS:
        return _PSEUDO_LEVELS[finding.rule]
    return CATEGORY_LEVELS.get(category_of.get(finding.rule, ""), "warning")


def _help_uri(rule_id: str) -> str:
    """README rule-table anchor for *rule_id*."""
    return f"{_TOOL_URI}/blob/main/README.md#rule-{rule_id.lower()}"


def _relative_uri(path: str, root: Optional[Path]) -> str:
    """*path* as a forward-slash URI, relative to *root* when possible."""
    p = Path(path)
    if root is not None:
        try:
            p = p.resolve().relative_to(root.resolve())
        except (ValueError, OSError):
            pass
    return str(PurePosixPath(*p.parts))


def sarif_log(
    report: LintReport,
    rules: Sequence[Rule],
    *,
    root: Optional[Path] = None,
) -> dict:
    """The SARIF 2.1.0 structure for *report* (rules = what ran)."""
    driver_rules = [
        {
            "id": rule.id,
            "name": type(rule).__name__,
            "shortDescription": {"text": rule.summary},
            "helpUri": _help_uri(rule.id),
            "defaultConfiguration": {
                "level": CATEGORY_LEVELS.get(rule.category, "warning")
            },
            "properties": {"category": rule.category},
        }
        for rule in sorted(rules, key=lambda r: r.id)
    ]
    category_of = {rule.id: rule.category for rule in rules}
    results = []
    for finding in report.findings:
        result = {
            "ruleId": finding.rule,
            "level": finding_level(finding, category_of),
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": _relative_uri(finding.path, root),
                            "uriBaseId": "%SRCROOT%",
                        },
                        "region": {
                            "startLine": finding.line,
                            "startColumn": finding.col,
                            "snippet": {"text": finding.snippet},
                        },
                    }
                }
            ],
            "partialFingerprints": {"deshlintKey/v1": finding.key()},
        }
        if finding.hotness_ms:
            result["properties"] = {
                "hotnessMs": round(finding.hotness_ms, 3)
            }
        if finding.related:
            result["relatedLocations"] = [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": _relative_uri(site.path, root),
                            "uriBaseId": "%SRCROOT%",
                        },
                        "region": {
                            "startLine": site.line,
                            "startColumn": site.col,
                        },
                    },
                    "message": {"text": site.message},
                }
                for site in finding.related
            ]
        results.append(result)
    return {
        "$schema": _SARIF_SCHEMA,
        "version": _SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "deshlint",
                        "informationUri": _TOOL_URI,
                        "rules": driver_rules,
                    }
                },
                "results": results,
            }
        ],
    }


def write_sarif(
    path: str | Path,
    report: LintReport,
    rules: Sequence[Rule],
    *,
    root: Optional[Path] = None,
) -> None:
    """Serialize :func:`sarif_log` to *path* (UTF-8 JSON, one file)."""
    log = sarif_log(report, rules, root=root)
    Path(path).write_text(json.dumps(log, indent=1), encoding="utf-8")
