"""The unit of deshlint output: one :class:`Finding` at one source site.

A finding's :meth:`~Finding.key` deliberately hashes the *content* of
the flagged line rather than its number, so a baseline entry survives
unrelated edits above it but stops matching the moment the flagged code
itself changes.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

__all__ = ["Finding", "RelatedSite"]


@dataclass(frozen=True)
class RelatedSite:
    """A secondary location attached to a finding.

    Dataflow findings are rarely about one line: an F4 atomicity window
    spans the stale read, the await that opens the window, and the
    write; an F5 chain walks several call sites.  Each hop is one
    ``RelatedSite`` rendered as a SARIF ``relatedLocation``.
    """

    path: str
    line: int
    col: int
    message: str

    def to_dict(self) -> dict:
        """JSON-serializable form."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location.

    ``level`` and ``hotness_ms`` are profile-guided annotations filled
    in by :mod:`repro.lint.perf.profile` when ``repro lint --profile``
    attributes measured time to the enclosing function: ``level`` is
    the SARIF severity (``error``/``warning``/``note``; empty means
    "use the rule category's default") and ``hotness_ms`` the measured
    milliseconds attributed to the function the finding sits in.  Both
    are excluded from ordering and from the baseline key so a profile
    never changes *which* findings exist, only how they rank.
    """

    path: str
    line: int
    col: int
    rule: str
    message: str = field(compare=False)
    snippet: str = field(compare=False, default="")
    related: tuple = field(compare=False, default=())
    level: str = field(compare=False, default="")
    hotness_ms: float = field(compare=False, default=0.0)

    def key(self) -> str:
        """Baseline identity: rule + file + flagged-line content hash."""
        text = f"{self.rule}|{self.path}|{self.snippet.strip()}"
        return hashlib.sha256(text.encode()).hexdigest()[:24]

    def render(self) -> str:
        """One-line human-readable form, ``path:line:col: RULE message``."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def to_dict(self) -> dict:
        """JSON-serializable form (used by ``repro lint --json``)."""
        out = {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
            "snippet": self.snippet,
            "key": self.key(),
        }
        if self.related:
            out["related"] = [site.to_dict() for site in self.related]
        if self.level:
            out["level"] = self.level
        if self.hotness_ms:
            out["hotness_ms"] = round(self.hotness_ms, 3)
        return out
