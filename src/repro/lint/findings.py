"""The unit of deshlint output: one :class:`Finding` at one source site.

A finding's :meth:`~Finding.key` deliberately hashes the *content* of
the flagged line rather than its number, so a baseline entry survives
unrelated edits above it but stops matching the moment the flagged code
itself changes.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

__all__ = ["Finding", "RelatedSite"]


@dataclass(frozen=True)
class RelatedSite:
    """A secondary location attached to a finding.

    Dataflow findings are rarely about one line: an F4 atomicity window
    spans the stale read, the await that opens the window, and the
    write; an F5 chain walks several call sites.  Each hop is one
    ``RelatedSite`` rendered as a SARIF ``relatedLocation``.
    """

    path: str
    line: int
    col: int
    message: str

    def to_dict(self) -> dict:
        """JSON-serializable form."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str = field(compare=False)
    snippet: str = field(compare=False, default="")
    related: tuple = field(compare=False, default=())

    def key(self) -> str:
        """Baseline identity: rule + file + flagged-line content hash."""
        text = f"{self.rule}|{self.path}|{self.snippet.strip()}"
        return hashlib.sha256(text.encode()).hexdigest()[:24]

    def render(self) -> str:
        """One-line human-readable form, ``path:line:col: RULE message``."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def to_dict(self) -> dict:
        """JSON-serializable form (used by ``repro lint --json``)."""
        out = {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
            "snippet": self.snippet,
            "key": self.key(),
        }
        if self.related:
            out["related"] = [site.to_dict() for site in self.related]
        return out
