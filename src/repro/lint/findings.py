"""The unit of deshlint output: one :class:`Finding` at one source site.

A finding's :meth:`~Finding.key` deliberately hashes the *content* of
the flagged line rather than its number, so a baseline entry survives
unrelated edits above it but stops matching the moment the flagged code
itself changes.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

__all__ = ["Finding"]


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str = field(compare=False)
    snippet: str = field(compare=False, default="")

    def key(self) -> str:
        """Baseline identity: rule + file + flagged-line content hash."""
        text = f"{self.rule}|{self.path}|{self.snippet.strip()}"
        return hashlib.sha256(text.encode()).hexdigest()[:24]

    def render(self) -> str:
        """One-line human-readable form, ``path:line:col: RULE message``."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def to_dict(self) -> dict:
        """JSON-serializable form (used by ``repro lint --json``)."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
            "snippet": self.snippet,
            "key": self.key(),
        }
