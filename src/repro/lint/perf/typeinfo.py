"""Syntactic local kind inference shared by the P1–P3 perf rules.

The perf rules only need to answer coarse questions — "is this name an
ndarray / list / str / dict inside this function?" — and only when the
answer is *provable from the function's own text*: assignments from
recognizable constructors, literals, and annotations.  Anything
ambiguous (a name assigned two different kinds, a value of unknown
provenance) stays out of the map, so the rules err toward silence.
No imports are executed; resolution is purely syntactic via
:mod:`repro.lint.names`.
"""

from __future__ import annotations

import ast
from typing import Dict, Optional

from ..names import ImportMap, resolve_dotted

__all__ = [
    "KIND_DICT",
    "KIND_LIST",
    "KIND_NDARRAY",
    "KIND_STR",
    "NP_ARRAY_FNS",
    "infer_kinds",
    "value_kind",
]

KIND_NDARRAY = "ndarray"
KIND_LIST = "list"
KIND_STR = "str"
KIND_DICT = "dict"

#: numpy callables whose result is an ndarray (constructor surface the
#: rules recognize; deliberately not exhaustive — unknown means silent).
NP_ARRAY_FNS = frozenset(
    {
        "array",
        "asarray",
        "ascontiguousarray",
        "zeros",
        "ones",
        "empty",
        "full",
        "zeros_like",
        "ones_like",
        "empty_like",
        "full_like",
        "arange",
        "linspace",
        "eye",
        "identity",
        "concatenate",
        "stack",
        "vstack",
        "hstack",
        "append",
        "copy",
        "where",
    }
)

_LIST_FNS = frozenset({"list", "sorted"})
_SCOPE_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef)


def _annotation_kind(annotation: ast.AST) -> Optional[str]:
    """Kind named by a type annotation, if recognizable."""
    text = ast.unparse(annotation).strip().strip("\"'")
    base = text.split("[", 1)[0].rpartition(".")[2]
    if base == "ndarray":
        return KIND_NDARRAY
    if base in {"list", "List"}:
        return KIND_LIST
    if base == "str":
        return KIND_STR
    if base in {"dict", "Dict"}:
        return KIND_DICT
    return None


def value_kind(value: ast.AST, imap: ImportMap) -> Optional[str]:
    """Kind of an assigned expression, or ``None`` when not provable."""
    if isinstance(value, (ast.List, ast.ListComp)):
        return KIND_LIST
    if isinstance(value, (ast.Dict, ast.DictComp)):
        return KIND_DICT
    if isinstance(value, ast.JoinedStr):
        return KIND_STR
    if isinstance(value, ast.Constant) and isinstance(value.value, str):
        return KIND_STR
    if isinstance(value, ast.Call):
        dotted = resolve_dotted(value.func, imap) or ""
        head, _, tail = dotted.partition(".")
        leaf = dotted.rpartition(".")[2]
        if head == "numpy" and tail and leaf in NP_ARRAY_FNS:
            return KIND_NDARRAY
        if dotted in _LIST_FNS:
            return KIND_LIST
        if dotted == "dict":
            return KIND_DICT
        if dotted == "str":
            return KIND_STR
        if (
            isinstance(value.func, ast.Attribute)
            and value.func.attr == "join"
            and isinstance(value.func.value, (ast.Constant, ast.JoinedStr))
        ):
            return KIND_STR
    return None


def _walk_in_scope(node: ast.AST):
    """Yield descendants of *node* without crossing nested-scope nodes."""
    stack = list(ast.iter_child_nodes(node))
    while stack:
        child = stack.pop()
        yield child
        if not isinstance(child, _SCOPE_NODES):
            stack.extend(ast.iter_child_nodes(child))


def infer_kinds(
    fn: "ast.FunctionDef | ast.AsyncFunctionDef", imap: ImportMap
) -> Dict[str, str]:
    """Name -> kind for locals of *fn* with a consistent provable kind.

    A name assigned conflicting kinds — or assigned one provable kind
    *and* something unrecognizable — is dropped: the rules must never
    reason from a kind that only sometimes holds.
    """
    kinds: Dict[str, Optional[str]] = {}

    def record(name: str, kind: Optional[str]) -> None:
        if name in kinds and kinds[name] != kind:
            kinds[name] = None
        else:
            kinds[name] = kind

    args = fn.args
    for group in (args.posonlyargs, args.args, args.kwonlyargs):
        for arg in group:
            if arg.annotation is not None:
                kind = _annotation_kind(arg.annotation)
                if kind is not None:
                    record(arg.arg, kind)
    for node in _walk_in_scope(fn):
        if isinstance(node, ast.Assign):
            kind = value_kind(node.value, imap)
            reads = {
                n.id for n in ast.walk(node.value) if isinstance(n, ast.Name)
            }
            for target in node.targets:
                if isinstance(target, ast.Name):
                    if kind is None and target.id in reads:
                        continue  # x = x + y keeps x's kind
                    record(target.id, kind)
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            kind = _annotation_kind(node.annotation)
            if kind is None and node.value is not None:
                kind = value_kind(node.value, imap)
            record(node.target.id, kind)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            if isinstance(node.target, ast.Name):
                record(node.target.id, None)
    return {name: kind for name, kind in kinds.items() if kind is not None}
