"""P2 — allocation in loop: loop-invariant work rebuilt every iteration.

The rule hunts work inside loop bodies whose inputs provably do not
change across iterations, so the whole expression can be hoisted above
the loop:

* **array constructors** — ``np.zeros``/``empty``/``ones``/``eye``/...
  with loop-invariant (or constant) arguments, assigned to a name that
  is never mutated inside the loop (a mutated target is a per-iteration
  scratch buffer and must stay put);
* **dict/list builds** — non-empty literals and ``dict()``/``list()``
  calls whose every element is loop-invariant (an *empty* literal is
  almost always a fresh per-iteration accumulator and is left alone);
* **un-gated eager logging** — ``log.debug(f"...{x}...")``-style calls
  that execute on every iteration (not nested under an ``if``/``try``)
  and format only loop-invariant operands: hoist or gate them.

Invariance is *proven*, not guessed: a loop-aware reaching-definitions
pass on the deshflow fixpoint solver
(:meth:`~repro.lint.perf.invariant.FunctionFlow.invariant_chain`)
demands every operand's every reaching definition lie outside the
loop, and each finding carries the exact invariant operand chain —
name by name, with where each was bound — as the hoist justification.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional, Sequence

from ..findings import Finding
from ..names import ImportMap, build_import_map, resolve_dotted
from ..rules import ModuleInfo, Rule, register
from .invariant import FunctionFlow, Operand

__all__ = ["HoistRule"]

#: numpy constructors whose loop-invariant calls are hoistable.
_ALLOC_FNS = frozenset(
    {
        "zeros",
        "ones",
        "empty",
        "full",
        "eye",
        "identity",
        "arange",
        "linspace",
    }
)

#: Logger method names treated as logging calls.
_LOG_METHODS = frozenset(
    {"debug", "info", "warning", "warn", "error", "exception", "critical", "log"}
)


def _chain_text(chain: Sequence[Operand]) -> str:
    """Render an invariant operand chain for the finding message."""
    if not chain:
        return "all operands are constants"
    return "invariant operands: " + ", ".join(op.describe() for op in chain)


def _is_logger_call(call: ast.Call, imap: ImportMap) -> bool:
    """Whether *call* is a recognizable logging-method invocation."""
    func = call.func
    if not isinstance(func, ast.Attribute) or func.attr not in _LOG_METHODS:
        return False
    dotted = resolve_dotted(func.value, imap) or ""
    root = dotted.split(".", 1)[0].lower()
    return root == "logging" or "log" in root


def _format_operands(call: ast.Call) -> Optional[List[ast.AST]]:
    """Operands eagerly formatted by a logging call's arguments.

    Returns ``None`` when no eager formatting happens (lazy ``%s``
    style with separate args — the cheap, recommended form).
    """
    operands: List[ast.AST] = []
    formatted = False
    for arg in call.args:
        if isinstance(arg, ast.JoinedStr):
            formatted = True
            for part in arg.values:
                if isinstance(part, ast.FormattedValue):
                    operands.append(part.value)
        elif isinstance(arg, ast.BinOp) and isinstance(arg.op, ast.Mod):
            formatted = True
            operands.append(arg.right)
        elif (
            isinstance(arg, ast.Call)
            and isinstance(arg.func, ast.Attribute)
            and arg.func.attr == "format"
        ):
            formatted = True
            operands.extend(arg.args)
            operands.extend(kw.value for kw in arg.keywords if kw.arg)
        else:
            operands.append(arg)
    return operands if formatted else None


@register
class HoistRule(Rule):
    """Loop bodies re-doing work whose inputs never change."""

    id = "P2"
    category = "perf"
    summary = (
        "allocation in loop: array constructors, dict/list builds and "
        "un-gated eager logging with provably loop-invariant operands "
        "rebuilt every iteration — hoist above the loop"
    )

    def check_module(self, module: ModuleInfo) -> Iterable[Finding]:
        """Analyze every function's loop bodies for hoistable work."""
        imap = build_import_map(module.tree, module.module_path)
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._check_function(module, node, imap, findings)
        return findings

    # ------------------------------------------------------------------
    def _check_function(
        self,
        module: ModuleInfo,
        fn: "ast.FunctionDef | ast.AsyncFunctionDef",
        imap: ImportMap,
        findings: List[Finding],
    ) -> None:
        flow = FunctionFlow(fn)
        self._scan(module, fn.body, flow, imap, loop=None, gated=False, out=findings)

    def _scan(
        self,
        module: ModuleInfo,
        stmts: Sequence[ast.stmt],
        flow: FunctionFlow,
        imap: ImportMap,
        loop: Optional[int],
        gated: bool,
        out: List[Finding],
    ) -> None:
        """Recursive loop-body scan tracking the innermost loop + gating."""
        for stmt in stmts:
            if isinstance(stmt, (ast.For, ast.AsyncFor, ast.While)):
                head = flow.block_of(stmt)
                self._scan(
                    module, stmt.body, flow, imap, loop=head, gated=False, out=out
                )
                self._scan(
                    module, stmt.orelse, flow, imap, loop=loop, gated=gated, out=out
                )
            elif isinstance(stmt, ast.If):
                inner_gated = gated or loop is not None
                self._scan(module, stmt.body, flow, imap, loop, inner_gated, out)
                self._scan(module, stmt.orelse, flow, imap, loop, inner_gated, out)
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                self._scan(module, stmt.body, flow, imap, loop, gated, out)
            elif isinstance(stmt, ast.Try):
                self._scan(module, stmt.body, flow, imap, loop, gated, out)
                for handler in stmt.handlers:
                    self._scan(module, handler.body, flow, imap, loop, True, out)
                self._scan(module, stmt.orelse, flow, imap, loop, True, out)
                self._scan(module, stmt.finalbody, flow, imap, loop, gated, out)
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue  # nested scopes are analyzed as their own functions
            elif loop is not None:
                self._check_stmt(module, stmt, flow, imap, loop, gated, out)

    # ------------------------------------------------------------------
    def _check_stmt(
        self,
        module: ModuleInfo,
        stmt: ast.stmt,
        flow: FunctionFlow,
        imap: ImportMap,
        loop: int,
        gated: bool,
        out: List[Finding],
    ) -> None:
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target = stmt.targets[0]
            if isinstance(target, ast.Name):
                self._check_assign(module, stmt, target.id, flow, imap, loop, out)
        elif isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call):
            if not gated and _is_logger_call(stmt.value, imap):
                self._check_logging(module, stmt, stmt.value, flow, loop, out)

    def _check_assign(
        self,
        module: ModuleInfo,
        stmt: ast.Assign,
        target: str,
        flow: FunctionFlow,
        imap: ImportMap,
        loop: int,
        out: List[Finding],
    ) -> None:
        value = stmt.value
        if target in flow.mutated_in_loop(loop):
            return  # per-iteration scratch buffer; hoisting changes behavior
        what: Optional[str] = None
        operands: List[ast.AST] = []
        if isinstance(value, ast.Call):
            dotted = resolve_dotted(value.func, imap) or ""
            pkg, _, tail = dotted.partition(".")
            if pkg == "numpy" and tail in _ALLOC_FNS:
                what = f"numpy.{tail} allocation"
                operands = list(value.args)
                operands.extend(kw.value for kw in value.keywords)
            elif dotted in {"dict", "list"} and (value.args or value.keywords):
                what = f"{dotted} build"
                operands = list(value.args)
                operands.extend(kw.value for kw in value.keywords)
        elif isinstance(value, ast.Dict) and value.keys:
            what = "dict build"
            operands = [k for k in value.keys if k is not None]
            operands.extend(value.values)
        elif isinstance(value, ast.List) and value.elts:
            what = "list build"
            operands = list(value.elts)
        if what is None:
            return
        chain = flow.invariant_chain(operands, stmt, loop)
        if chain is None:
            return
        related = tuple(
            module.site(
                _line_anchor(flow, op),
                f"invariant operand {op.name!r} {op.bound_at}",
            )
            for op in chain
            if op.lines
        )
        out.append(
            module.finding(
                stmt,
                self.id,
                f"loop-invariant {what} rebuilt every iteration "
                f"(assigned to {target!r}); hoist it above the loop — "
                f"{_chain_text(chain)}",
                related=related,
            )
        )

    def _check_logging(
        self,
        module: ModuleInfo,
        stmt: ast.Expr,
        call: ast.Call,
        flow: FunctionFlow,
        loop: int,
        out: List[Finding],
    ) -> None:
        operands = _format_operands(call)
        if operands is None:
            return
        chain = flow.invariant_chain(operands, stmt, loop)
        if chain is None:
            return
        out.append(
            module.finding(
                stmt,
                self.id,
                "un-gated logging call formats only loop-invariant "
                "operands on every iteration; hoist it above the loop "
                f"or gate it — {_chain_text(chain)}",
            )
        )


def _line_anchor(flow: FunctionFlow, op: Operand) -> ast.AST:
    """A synthetic AST anchor at an operand's first definition line."""
    anchor = ast.Pass()
    anchor.lineno = op.lines[0]
    anchor.col_offset = 0
    return anchor
