"""Profile-guided hotness ranking for deshlint findings.

``repro trace <cmd> --trace-out spans.jsonl --metrics-out metrics.json``
leaves two artifacts behind: a JSONL file of tracer spans (one JSON
object per line with ``name``/``duration`` in seconds) and a metrics
snapshot (one JSON dict whose histogram entries carry a ``sum``; the
repo's latency histograms are named ``*_ms`` and record milliseconds).
:class:`HotnessProfile` reads either format — sniffed per file, both
may be passed — and attributes the measured milliseconds to *code*
via :data:`SPAN_OWNERS`: a static map from span/metric name prefixes
to the dotted module/function prefixes that do the work under them.

:func:`apply_profile` then joins findings against the profile.  Each
finding resolves to the qualified name of its enclosing function
(``repro.core.phase3.Phase3Predictor._score_episode``); the measured
milliseconds of every owning span accumulate into the finding's
``hotness_ms``, and perf-rule findings get their SARIF ``level`` set
by the escalation policy:

* hot under a **critical** span (the Fig. 10 ``phase3.prediction_ms``
  prediction path or the fit-loop epoch spans) -> ``error``;
* hot under any other measured span -> ``warning``;
* cold (no measured time attributed) -> ``note``.

Non-perf findings keep their category default — a profile never
changes *which* findings exist, only how perf findings rank and gate.
"""

from __future__ import annotations

import ast
import json
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ...errors import LintError
from ..findings import Finding
from ..rules import ModuleInfo

__all__ = [
    "LEVEL_ORDER",
    "SPAN_OWNERS",
    "HotnessProfile",
    "RankedFinding",
    "SpanOwner",
    "apply_profile",
]


@dataclass(frozen=True)
class SpanOwner(object):
    """One span/metric name (or ``.``/``:`` prefix) -> owning code."""

    #: Exact span/metric name, or a prefix when ending in "." or ":".
    pattern: str
    #: Dotted code prefixes that execute under this span.
    owners: Tuple[str, ...]
    #: Whether findings heated by this span escalate to error level.
    critical: bool = False

    def matches(self, name: str) -> bool:
        """Whether measured entry *name* falls under this pattern."""
        if self.pattern.endswith((".", ":")):
            return name.startswith(self.pattern)
        return name == self.pattern


#: Code owning the Fig. 10 per-prediction latency path.
_PREDICT_OWNERS = (
    "repro.core.phase3",
    "repro.core.deltas",
    "repro.nn.batched",
    "repro.nn.layers",
    "repro.nn.lstm",
    "repro.nn.model",
    "repro.nn.activations",
)

#: Code owning the training loops (epoch histograms / fit spans).
_FIT_OWNERS = (
    "repro.nn.model",
    "repro.nn.layers",
    "repro.nn.lstm",
    "repro.nn.losses",
    "repro.nn.optimizers",
    "repro.nn.trainer",
    "repro.nn.data",
)

#: The static span-name -> code-owner table.  First match wins; names
#: matching nothing are counted but attributed to no code.  Critical
#: entries are the paper's measured claims: the Fig. 10 prediction
#: latency and the fit-loop epochs.
SPAN_OWNERS: Tuple[SpanOwner, ...] = (
    SpanOwner("phase3.prediction_ms", _PREDICT_OWNERS, critical=True),
    SpanOwner("phase3.", _PREDICT_OWNERS, critical=True),
    SpanOwner("nn.classifier.epoch_ms", _FIT_OWNERS, critical=True),
    SpanOwner("nn.regressor.epoch_ms", _FIT_OWNERS, critical=True),
    SpanOwner("nn.classifier.fit", _FIT_OWNERS, critical=True),
    SpanOwner("nn.regressor.fit", _FIT_OWNERS, critical=True),
    SpanOwner("nn.fit_with_validation", _FIT_OWNERS, critical=True),
    SpanOwner("parse.", ("repro.parsing",)),
    SpanOwner("ingest.", ("repro.parsing", "repro.resilience.ingest")),
    SpanOwner("pipeline.", ("repro.pipeline",)),
    SpanOwner("stage:", ("repro.pipeline",)),
    SpanOwner("checkpoint.", ("repro.resilience.checkpoint",)),
    SpanOwner("serve.", ("repro.serve",)),
    SpanOwner("monitor.", ("repro.core.monitor",)),
)

#: Severity rank used by the CLI's --min-level gate.
LEVEL_ORDER = {"note": 0, "warning": 1, "error": 2}


class HotnessProfile:
    """Measured time per span/metric name, attributable to code."""

    def __init__(self, entries: Optional[Dict[str, float]] = None) -> None:
        #: Span/metric name -> total measured milliseconds.
        self.entries: Dict[str, float] = dict(entries or {})
        self._owner_cache: Optional[Dict[str, Tuple[float, bool]]] = None

    # -- construction --------------------------------------------------
    @classmethod
    def load(cls, paths: Iterable["str | Path"]) -> "HotnessProfile":
        """Read trace-JSONL and/or metrics-snapshot files into one profile."""
        profile = cls()
        for raw in paths:
            path = Path(raw)
            try:
                text = path.read_text(encoding="utf-8")
            except OSError as exc:
                raise LintError(f"cannot read profile {path}: {exc}") from exc
            profile._ingest(text, str(path))
        return profile

    def _ingest(self, text: str, origin: str) -> None:
        try:
            whole = json.loads(text)
        except json.JSONDecodeError:
            self._ingest_jsonl(text, origin)
            return
        if isinstance(whole, dict) and "duration" in whole:
            self._add_span(whole)
        elif isinstance(whole, dict):
            self._ingest_metrics(whole)
        else:
            raise LintError(f"profile {origin}: expected spans or a metrics dict")

    def _ingest_jsonl(self, text: str, origin: str) -> None:
        for lineno, line in enumerate(text.splitlines(), start=1):
            line = line.strip()
            if not line:
                continue
            try:
                obj = json.loads(line)
            except json.JSONDecodeError as exc:
                raise LintError(
                    f"profile {origin}:{lineno}: bad JSONL span: {exc}"
                ) from exc
            if isinstance(obj, dict) and "duration" in obj:
                self._add_span(obj)

    def _add_span(self, span: dict) -> None:
        name = span.get("name")
        duration = span.get("duration")
        if isinstance(name, str) and isinstance(duration, (int, float)):
            # Tracer spans record seconds; the profile speaks ms.
            self.entries[name] = self.entries.get(name, 0.0) + duration * 1e3
        return

    def _ingest_metrics(self, snapshot: dict) -> None:
        for name in sorted(snapshot):
            payload = snapshot[name]
            if not isinstance(payload, dict):
                continue
            if payload.get("type") != "histogram":
                continue
            total = payload.get("sum")
            if isinstance(total, (int, float)):
                # The repo's latency histograms are *_ms: sum is ms.
                self.entries[name] = self.entries.get(name, 0.0) + float(total)

    # -- attribution ---------------------------------------------------
    def total_ms(self) -> float:
        """Total measured milliseconds across every loaded entry."""
        return sum(self.entries.values())

    def by_owner(self) -> Dict[str, Tuple[float, bool]]:
        """Code prefix -> (attributed ms, any critical span heats it)."""
        if self._owner_cache is not None:
            return self._owner_cache
        out: Dict[str, Tuple[float, bool]] = {}
        for name in sorted(self.entries):
            ms = self.entries[name]
            owner_entry = next(
                (o for o in SPAN_OWNERS if o.matches(name)), None
            )
            if owner_entry is None:
                continue
            for prefix in owner_entry.owners:
                prev_ms, prev_crit = out.get(prefix, (0.0, False))
                out[prefix] = (prev_ms + ms, prev_crit or owner_entry.critical)
        self._owner_cache = out
        return out

    def hotness(self, qualified: str) -> Tuple[float, bool]:
        """(attributed ms, critical?) for a qualified function name."""
        total = 0.0
        critical = False
        for prefix, (ms, crit) in sorted(self.by_owner().items()):
            if qualified == prefix or qualified.startswith(prefix + "."):
                total += ms
                critical = critical or crit
        return total, critical


@dataclass(frozen=True)
class RankedFinding(object):
    """One finding with its profile attribution, for ranked rendering."""

    finding: Finding
    #: Dotted name of the enclosing function (module path when top-level).
    qualified: str


def _function_spans(
    tree: ast.Module,
) -> List[Tuple[int, int, str]]:
    """(start line, end line, qualname) per def, innermost resolvable."""
    spans: List[Tuple[int, int, str]] = []

    def visit(node: ast.AST, prefix: str) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{prefix}.{child.name}" if prefix else child.name
                end = getattr(child, "end_lineno", child.lineno)
                spans.append((child.lineno, end, qual))
                visit(child, qual)
            elif isinstance(child, ast.ClassDef):
                qual = f"{prefix}.{child.name}" if prefix else child.name
                visit(child, qual)
            else:
                visit(child, prefix)

    visit(tree, "")
    return spans


def _enclosing_qualname(
    spans: Sequence[Tuple[int, int, str]], line: int
) -> str:
    """Qualname of the innermost def covering *line* ('' at module level)."""
    best = ""
    best_size = None
    for start, end, qual in spans:
        if start <= line <= end:
            size = end - start
            if best_size is None or size < best_size:
                best = qual
                best_size = size
    return best


def apply_profile(
    findings: Sequence[Finding],
    modules: Sequence[ModuleInfo],
    profile: HotnessProfile,
) -> List[RankedFinding]:
    """Annotate findings with hotness + level, ranked hottest-first.

    Returns one :class:`RankedFinding` per input finding, ordered by
    descending attributed milliseconds (ties keep the engine's
    path/line order).  The contained findings carry ``hotness_ms`` and
    — for perf-rule findings — the escalated/demoted ``level``.
    """
    spans_by_path: Dict[str, List[Tuple[int, int, str]]] = {}
    module_paths: Dict[str, str] = {}
    for module in modules:
        spans_by_path[module.path] = _function_spans(module.tree)
        module_paths[module.path] = module.module_path
    ranked: List[RankedFinding] = []
    for finding in findings:
        spans = spans_by_path.get(finding.path, [])
        qualname = _enclosing_qualname(spans, finding.line)
        module_path = module_paths.get(finding.path, "")
        qualified = (
            f"{module_path}.{qualname}" if module_path and qualname
            else (qualname or module_path)
        )
        ms, critical = profile.hotness(qualified) if qualified else (0.0, False)
        annotated = replace(finding, hotness_ms=ms)
        if finding.rule.startswith("P"):
            if ms > 0.0 and critical:
                level = "error"
            elif ms > 0.0:
                level = "warning"
            else:
                level = "note"
            annotated = replace(annotated, level=level)
        ranked.append(RankedFinding(finding=annotated, qualified=qualified))
    ranked.sort(
        key=lambda r: (-r.finding.hotness_ms, r.finding)
    )
    return ranked
