"""P1 — vectorization: Python-level loops doing numpy's job.

Three shapes of the same latency bug, each one a per-element Python
bytecode round-trip over data numpy could process in one C call:

* **element iteration** — a ``for`` loop that walks an ndarray (rows or
  elements, directly, via ``enumerate``, or via ``range(len(a))`` /
  ``range(a.shape[0])``) and applies per-element arithmetic/comparisons
  that feed a Python-side accumulator;
* **ufunc-per-slice** — a numpy reduction/ufunc called once per
  iteration over a slice indexed by the loop variable
  (``np.sum(x * W[:, j])`` in a ``for j`` loop) instead of once over
  the whole axis;
* **growth by concatenation** — ``a = np.append(a, ...)`` /
  ``np.concatenate``/``np.vstack``/``np.hstack`` reassigned inside a
  loop, copying the accumulated prefix every iteration (quadratic).

The loop structure comes from the deshflow CFG's loop-nesting
annotation via :class:`~repro.lint.perf.invariant.FunctionFlow`; array
kinds come from :mod:`~repro.lint.perf.typeinfo`.  At most one
element/slice finding is reported per loop (the per-slice shape is the
more precise diagnosis and wins); growth sites report per statement.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional, Sequence, Set, Tuple

from ..findings import Finding
from ..names import ImportMap, build_import_map, resolve_dotted
from ..rules import ModuleInfo, Rule, register
from .invariant import FunctionFlow, _walk_no_scope
from .typeinfo import KIND_NDARRAY, infer_kinds

__all__ = ["VectorizeRule"]

#: numpy callables whose per-iteration use over loop-indexed slices is
#: almost always a batchable whole-array/axis operation.
_SLICE_UFUNCS = frozenset(
    {
        "sum",
        "mean",
        "std",
        "var",
        "dot",
        "matmul",
        "inner",
        "outer",
        "exp",
        "log",
        "sqrt",
        "abs",
        "absolute",
        "square",
        "add",
        "subtract",
        "multiply",
        "divide",
        "maximum",
        "minimum",
        "clip",
        "where",
        "einsum",
        "tanh",
        "argmax",
        "argmin",
        "max",
        "min",
        "linalg.norm",
    }
)

#: numpy callables that build a new array from existing ones — the
#: growth-by-concatenation shape when the target feeds itself.
_GROWTH_FNS = frozenset({"append", "concatenate", "vstack", "hstack", "stack"})


def _names_in(node: ast.AST) -> Set[str]:
    """Every ``Name`` read inside *node* (no scope crossing)."""
    out: Set[str] = set()
    nodes = [node]
    nodes.extend(_walk_no_scope(node))
    for child in nodes:
        if isinstance(child, ast.Name):
            out.add(child.id)
    return out


def _whole_names_in(node: ast.AST) -> Set[str]:
    """Names read *whole* inside *node* — not under a subscript.

    ``np.concatenate([acc, p])`` feeds ``acc`` back whole (growth);
    ``np.concatenate([window[:, 1:], nxt])`` reads only a slice of
    ``window`` (a constant-size slide, not quadratic growth), so
    subscript subtrees are excluded entirely.
    """
    out: Set[str] = set()
    stack: List[ast.AST] = [node]
    while stack:
        child = stack.pop()
        if isinstance(child, ast.Subscript):
            continue
        if isinstance(child, ast.Name):
            out.add(child.id)
        stack.extend(ast.iter_child_nodes(child))
    return out


def _iterated_array(
    loop: ast.For, kinds: dict
) -> "Optional[Tuple[str, Set[str], Set[str]]]":
    """(array name, element vars, index vars) when *loop* walks an ndarray."""
    iter_expr = loop.iter
    elems: Set[str] = set()
    indexes: Set[str] = set()

    def target_names(node: ast.AST) -> List[str]:
        if isinstance(node, ast.Name):
            return [node.id]
        if isinstance(node, (ast.Tuple, ast.List)):
            out: List[str] = []
            for elt in node.elts:
                out.extend(target_names(elt))
            return out
        return []

    names = target_names(loop.target)
    if isinstance(iter_expr, ast.Name):
        if kinds.get(iter_expr.id) != KIND_NDARRAY:
            return None
        elems.update(names)
        return iter_expr.id, elems, indexes
    if not isinstance(iter_expr, ast.Call):
        return None
    func = iter_expr.func
    if isinstance(func, ast.Name) and func.id == "enumerate" and iter_expr.args:
        inner = iter_expr.args[0]
        if isinstance(inner, ast.Name) and kinds.get(inner.id) == KIND_NDARRAY:
            if len(names) == 2:
                indexes.add(names[0])
                elems.add(names[1])
                return inner.id, elems, indexes
        return None
    if isinstance(func, ast.Name) and func.id == "range" and len(iter_expr.args) == 1:
        arg = iter_expr.args[0]
        array: Optional[str] = None
        if (
            isinstance(arg, ast.Call)
            and isinstance(arg.func, ast.Name)
            and arg.func.id == "len"
            and arg.args
            and isinstance(arg.args[0], ast.Name)
        ):
            array = arg.args[0].id
        elif (
            isinstance(arg, ast.Subscript)
            and isinstance(arg.value, ast.Attribute)
            and arg.value.attr == "shape"
            and isinstance(arg.value.value, ast.Name)
        ):
            array = arg.value.value.id
        if array is not None and kinds.get(array) == KIND_NDARRAY:
            indexes.update(names)
            return array, elems, indexes
    return None


def _element_reads(node: ast.AST, array: str, elems: Set[str], indexes: Set[str]) -> bool:
    """Whether *node* reads an element of the iterated array."""
    if isinstance(node, ast.Name) and node.id in elems:
        return True
    if (
        isinstance(node, ast.Subscript)
        and isinstance(node.value, ast.Name)
        and node.value.id == array
    ):
        return bool(_names_in(node.slice) & indexes)
    return False


@register
class VectorizeRule(Rule):
    """Python loops over ndarrays doing per-element numpy work."""

    id = "P1"
    category = "perf"
    summary = (
        "vectorization: Python-level loops that iterate an ndarray "
        "applying per-element ops, call numpy per loop-indexed slice, "
        "or grow arrays by concatenation (quadratic) — batch into "
        "whole-array numpy calls"
    )

    def check_module(self, module: ModuleInfo) -> Iterable[Finding]:
        """Analyze every function's loops against the three P1 shapes."""
        imap = build_import_map(module.tree, module.module_path)
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._check_function(module, node, imap, findings)
        return findings

    # ------------------------------------------------------------------
    def _check_function(
        self,
        module: ModuleInfo,
        fn: "ast.FunctionDef | ast.AsyncFunctionDef",
        imap: ImportMap,
        findings: List[Finding],
    ) -> None:
        kinds = infer_kinds(fn, imap)
        flow = FunctionFlow(fn)
        for head in flow.loop_heads():
            loop = flow.loop_stmt(head)
            if isinstance(loop, ast.For):
                # One diagnosis per loop: the per-slice ufunc shape is
                # the more precise one, so it wins over plain element
                # iteration when both match.
                if not self._check_slice_ufuncs(module, loop, imap, findings):
                    self._check_element_loop(module, loop, kinds, findings)
            self._check_growth(module, loop, flow, head, imap, findings)

    def _check_element_loop(
        self,
        module: ModuleInfo,
        loop: ast.For,
        kinds: dict,
        findings: List[Finding],
    ) -> None:
        iterated = _iterated_array(loop, kinds)
        if iterated is None:
            return
        array, elems, indexes = iterated
        arithmetic = False
        accumulates = False
        ufunc_on_elem = False
        for stmt in loop.body:
            for node in self._body_walk(stmt):
                if isinstance(node, (ast.BinOp, ast.Compare)):
                    operands = [node.left]
                    operands.extend(
                        node.comparators
                        if isinstance(node, ast.Compare)
                        else [node.right]
                    )
                    if any(
                        _element_reads(op, array, elems, indexes) for op in operands
                    ):
                        arithmetic = True
                elif isinstance(node, ast.Call):
                    if (
                        isinstance(node.func, ast.Attribute)
                        and node.func.attr == "append"
                    ):
                        accumulates = True
                    elif any(
                        _element_reads(arg, array, elems, indexes)
                        for arg in node.args
                    ):
                        ufunc_on_elem = True
                elif isinstance(node, ast.AugAssign):
                    if any(
                        _element_reads(child, array, elems, indexes)
                        for child in ast.walk(node.value)
                    ):
                        accumulates = True
        if ufunc_on_elem or (arithmetic and accumulates):
            findings.append(
                module.finding(
                    loop,
                    self.id,
                    f"loop iterates ndarray {array!r} element-by-element "
                    "applying per-element operations in Python; replace "
                    "with whole-array numpy ops (arange/masks/ufuncs)",
                )
            )

    def _check_slice_ufuncs(
        self,
        module: ModuleInfo,
        loop: ast.For,
        imap: ImportMap,
        findings: List[Finding],
    ) -> bool:
        """Report the first per-slice ufunc call; True when one fired."""
        loop_vars = _names_in(loop.target)
        for stmt in loop.body:
            for node in self._body_walk(stmt):
                if not isinstance(node, ast.Call):
                    continue
                dotted = resolve_dotted(node.func, imap) or ""
                head, _, tail = dotted.partition(".")
                if head != "numpy" or tail not in _SLICE_UFUNCS:
                    continue
                if self._is_recurrence(stmt, node):
                    continue  # loop-carried dependence: cannot batch
                sliced = False
                for arg in node.args:
                    arg_nodes = [arg]
                    arg_nodes.extend(_walk_no_scope(arg))
                    for child in arg_nodes:
                        if isinstance(child, ast.Subscript) and (
                            _names_in(child.slice) & loop_vars
                        ):
                            sliced = True
                if sliced:
                    findings.append(
                        module.finding(
                            node,
                            self.id,
                            f"numpy.{tail} called once per iteration over a "
                            "slice indexed by the loop variable; batch into "
                            "a single whole-array call along the axis",
                        )
                    )
                    return True
        return False

    def _check_growth(
        self,
        module: ModuleInfo,
        loop: ast.stmt,
        flow: FunctionFlow,
        head: int,
        imap: ImportMap,
        findings: List[Finding],
    ) -> None:
        for block in flow.cfg.blocks:
            # Innermost enclosing loop only, so a nested stmt is not
            # re-reported once per enclosing loop level.
            if block.id == head or not block.loops or block.loops[-1] != head:
                continue
            for stmt in block.stmts:
                if not isinstance(stmt, ast.Assign) or not isinstance(
                    stmt.value, ast.Call
                ):
                    continue
                dotted = resolve_dotted(stmt.value.func, imap) or ""
                pkg, _, tail = dotted.partition(".")
                if pkg != "numpy" or tail not in _GROWTH_FNS:
                    continue
                targets: Set[str] = set()
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        targets.add(target.id)
                if not targets:
                    continue
                fed_back = set()
                for arg in stmt.value.args:
                    fed_back |= _whole_names_in(arg) & targets
                if fed_back:
                    grown = ",".join(sorted(fed_back))
                    findings.append(
                        module.finding(
                            stmt,
                            self.id,
                            f"growing ndarray {grown!r} via numpy.{tail} "
                            "inside a loop copies the accumulated prefix "
                            "every iteration (quadratic); collect parts in "
                            "a list and concatenate once after the loop",
                        )
                    )

    @staticmethod
    def _is_recurrence(stmt: ast.stmt, call: ast.Call) -> bool:
        """Whether *call* feeds a target it also reads (h = f(..h..))."""
        reads: Set[str] = set()
        for arg in call.args:
            reads |= _names_in(arg)
        if isinstance(stmt, ast.Assign):
            targets: Set[str] = set()
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    targets.add(target.id)
            return bool(targets & reads)
        if isinstance(stmt, ast.AugAssign) and isinstance(stmt.target, ast.Name):
            return stmt.target.id in reads
        return False

    #: Node types whose insides are *not* part of this loop's body walk:
    #: nested scopes run elsewhere, nested loops are analyzed on their own.
    _BODY_STOP = (
        ast.FunctionDef,
        ast.AsyncFunctionDef,
        ast.Lambda,
        ast.ClassDef,
        ast.For,
        ast.AsyncFor,
        ast.While,
    )

    @classmethod
    def _body_walk(cls, stmt: ast.stmt) -> Iterable[ast.AST]:
        """Walk a loop-body statement without crossing nested scopes or
        nested loops (inner loops are analyzed on their own)."""
        if isinstance(stmt, cls._BODY_STOP):
            return
        stack: List[ast.AST] = [stmt]
        while stack:
            node = stack.pop()
            yield node
            for child in ast.iter_child_nodes(node):
                if not isinstance(child, cls._BODY_STOP):
                    stack.append(child)
