"""P3 — hidden quadratics: O(n²) behavior wearing O(n) syntax.

Three idioms that look constant-time per step but are linear per step,
so the loop around them is quadratic:

* ``list.insert(0, item)`` — shifts the whole list every call; use
  ``collections.deque.appendleft`` or append + single ``reverse``;
* ``x in items`` / ``x not in items`` probed repeatedly (inside a loop
  or comprehension) against a *list* built in the same function — each
  probe is a linear scan; build a ``set`` once;
* string accumulation — ``s += part`` (or ``s = s + part``) in a loop
  copies the accumulated prefix every iteration; collect parts and
  ``"".join`` once.  The rebind form ``a = a + x`` on an ndarray is
  flagged too: it allocates a fresh array per iteration where in-place
  ``a += x`` (or one vectorized reduction) would not.

Kinds come from the same provable-only local inference the other perf
rules use (:mod:`~repro.lint.perf.typeinfo`); loop membership comes
from the CFG's loop-nesting annotation via
:class:`~repro.lint.perf.invariant.FunctionFlow`, so the rule agrees
with the solver-backed rules about what "inside a loop" means.
"""

from __future__ import annotations

import ast
from typing import Iterable, List

from ..findings import Finding
from ..names import build_import_map
from ..rules import ModuleInfo, Rule, register
from .invariant import FunctionFlow
from .typeinfo import KIND_LIST, KIND_NDARRAY, KIND_STR, infer_kinds

__all__ = ["QuadraticRule"]

_SCOPE_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef)


def _stmt_walk(stmt: ast.stmt) -> Iterable[ast.AST]:
    """Nodes of one lowered statement head, flagging comprehension depth.

    Yields ``(node, in_comprehension)`` pairs without descending into
    nested scopes or into compound-statement bodies (those are separate
    CFG statements walked on their own).
    """
    head_exprs: List[ast.AST] = []
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        head_exprs = [stmt.iter]
    elif isinstance(stmt, (ast.While, ast.If)):
        head_exprs = [stmt.test]
    elif isinstance(stmt, (ast.With, ast.AsyncWith)):
        head_exprs = [item.context_expr for item in stmt.items]
    elif isinstance(stmt, ast.Try):
        head_exprs = []
    else:
        head_exprs = list(ast.iter_child_nodes(stmt))
    stack = [(expr, False) for expr in head_exprs]
    while stack:
        node, in_comp = stack.pop()
        if isinstance(node, _SCOPE_NODES):
            continue
        yield node, in_comp
        inner = in_comp or isinstance(
            node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
        )
        stack.extend((child, inner) for child in ast.iter_child_nodes(node))


@register
class QuadraticRule(Rule):
    """Per-step-linear idioms that make the surrounding loop quadratic."""

    id = "P3"
    category = "perf"
    summary = (
        "hidden quadratics: list.insert(0,...), membership tests "
        "against locally-built lists in loops, and repeated str/ndarray "
        "+=-style accumulation — each step is O(n), the loop is O(n^2)"
    )

    def check_module(self, module: ModuleInfo) -> Iterable[Finding]:
        """Analyze every function for the three quadratic idioms."""
        imap = build_import_map(module.tree, module.module_path)
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._check_function(module, node, imap, findings)
        return findings

    def _check_function(
        self,
        module: ModuleInfo,
        fn: "ast.FunctionDef | ast.AsyncFunctionDef",
        imap,
        findings: List[Finding],
    ) -> None:
        kinds = infer_kinds(fn, imap)
        flow = FunctionFlow(fn)
        for block in flow.cfg.blocks:
            in_loop = bool(block.loops)
            for stmt in block.stmts:
                self._check_stmt(module, stmt, kinds, in_loop, findings)

    # ------------------------------------------------------------------
    def _check_stmt(
        self,
        module: ModuleInfo,
        stmt: ast.stmt,
        kinds: dict,
        in_loop: bool,
        findings: List[Finding],
    ) -> None:
        self._check_accumulation(module, stmt, kinds, in_loop, findings)
        for node, in_comp in _stmt_walk(stmt):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "insert"
                and isinstance(node.func.value, ast.Name)
                and kinds.get(node.func.value.id) == KIND_LIST
                and node.args
                and isinstance(node.args[0], ast.Constant)
                and node.args[0].value == 0
            ):
                findings.append(
                    module.finding(
                        node,
                        self.id,
                        f"list.insert(0, ...) on {node.func.value.id!r} "
                        "shifts every element on each call; use "
                        "collections.deque.appendleft or append + one "
                        "reverse",
                    )
                )
            elif isinstance(node, ast.Compare) and (in_loop or in_comp):
                for op, comparator in zip(node.ops, node.comparators):
                    if (
                        isinstance(op, (ast.In, ast.NotIn))
                        and isinstance(comparator, ast.Name)
                        and kinds.get(comparator.id) == KIND_LIST
                    ):
                        findings.append(
                            module.finding(
                                node,
                                self.id,
                                "membership test against list "
                                f"{comparator.id!r} built in this function "
                                "is a linear scan per probe; build a set "
                                "once and test against it",
                            )
                        )

    def _check_accumulation(
        self,
        module: ModuleInfo,
        stmt: ast.stmt,
        kinds: dict,
        in_loop: bool,
        findings: List[Finding],
    ) -> None:
        if not in_loop:
            return
        if (
            isinstance(stmt, ast.AugAssign)
            and isinstance(stmt.op, ast.Add)
            and isinstance(stmt.target, ast.Name)
            and kinds.get(stmt.target.id) == KIND_STR
        ):
            findings.append(
                module.finding(
                    stmt,
                    self.id,
                    f"string accumulation {stmt.target.id!r} += ... in a "
                    "loop copies the accumulated prefix every iteration "
                    "(quadratic); collect parts in a list and ''.join once",
                )
            )
            return
        if (
            isinstance(stmt, ast.Assign)
            and len(stmt.targets) == 1
            and isinstance(stmt.targets[0], ast.Name)
            and isinstance(stmt.value, ast.BinOp)
            and isinstance(stmt.value.op, ast.Add)
        ):
            target = stmt.targets[0].id
            left = stmt.value.left
            if not (isinstance(left, ast.Name) and left.id == target):
                return
            kind = kinds.get(target)
            if kind == KIND_STR:
                findings.append(
                    module.finding(
                        stmt,
                        self.id,
                        f"string accumulation {target!r} = {target} + ... "
                        "in a loop copies the accumulated prefix every "
                        "iteration (quadratic); collect parts in a list "
                        "and ''.join once",
                    )
                )
            elif kind == KIND_NDARRAY:
                findings.append(
                    module.finding(
                        stmt,
                        self.id,
                        f"ndarray rebind {target!r} = {target} + ... in a "
                        "loop allocates a fresh array every iteration; "
                        f"use in-place {target} += ... or one vectorized "
                        "reduction",
                    )
                )
