"""Loop-aware reaching definitions on the deshflow CFG + solver.

:class:`FunctionFlow` wraps one function with everything the perf
rules need:

* the function's :class:`~repro.lint.flow.cfg.CFG`, whose blocks carry
  the loop-nesting annotation (``Block.loops``);
* a reaching-definitions fixpoint run through the generic
  :func:`~repro.lint.flow.solver.solve` worklist solver — the abstract
  state maps each local name to the *set of definition sites*
  ``(block_id, stmt_index)`` that may reach a program point, with the
  sentinel :data:`PARAM_SITE` standing for the function parameters;
* per-loop mutation summaries (names whose attributes/elements may be
  written, or which receive in-place mutator calls, inside a loop).

On top of those, :meth:`FunctionFlow.invariant_chain` proves an
expression loop-invariant: every name it reads must have *all* its
reaching definitions outside the loop (a parameter, a pre-loop
assignment, or resolution outside the function entirely), and no root
it dereferences may be mutated inside the loop.  The proof is returned
as the operand chain — one :class:`Operand` per name with where it was
bound — so P2 findings can show exactly *why* a hoist is safe.  The
lattice is the powerset of definition sites ordered by inclusion
(join = union), so the fixpoint terminates on the solver's standard
argument: finitely many sites per function.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from ..flow.cfg import CFG, Block, build_cfg
from ..flow.solver import Domain, solve
from ..rules.purity import _MUTATORS

__all__ = ["PARAM_SITE", "FunctionFlow", "Operand", "head_defs"]

#: Sentinel definition site for function parameters (outside any loop).
PARAM_SITE = (-1, -1)

#: One reaching-defs state: local name -> reaching definition sites.
_State = Dict[str, FrozenSet[Tuple[int, int]]]

_SCOPE_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef)

#: Expression nodes allowed inside a provable-invariant operand tree.
#: Calls and subscripts are excluded on purpose: a call may be impure
#: and a subscripted container may be mutated without a rebind, and
#: the analysis only reports what it can prove.
_PURE_EXPR_NODES = (
    ast.Constant,
    ast.Name,
    ast.Attribute,
    ast.Tuple,
    ast.List,
    ast.BinOp,
    ast.UnaryOp,
    ast.BoolOp,
    ast.Compare,
    ast.Load,
    ast.Store,
    ast.operator,
    ast.unaryop,
    ast.boolop,
    ast.cmpop,
    ast.expr_context,
)


@dataclass(frozen=True)
class Operand(object):
    """One name in a proven-invariant operand chain."""

    name: str
    #: Where the binding comes from: "parameter", "outer scope", or
    #: "line N[,M...]" for pre-loop assignments.
    bound_at: str
    #: Definition line numbers inside the function ('' entries removed).
    lines: Tuple[int, ...] = ()

    def describe(self) -> str:
        """Human form used in P2 messages, e.g. ``n (bound at line 3)``."""
        return f"{self.name} ({self.bound_at})"


def _target_names(target: ast.AST, into: Set[str]) -> None:
    """Names bound by an assignment/for/with target node."""
    if isinstance(target, ast.Name):
        into.add(target.id)
    elif isinstance(target, (ast.Tuple, ast.List)):
        for elt in target.elts:
            _target_names(elt, into)
    elif isinstance(target, ast.Starred):
        _target_names(target.value, into)


def _walk_no_scope(node: ast.AST) -> Iterable[ast.AST]:
    """Descendants of *node* without crossing nested-scope boundaries."""
    stack = list(ast.iter_child_nodes(node))
    while stack:
        child = stack.pop()
        if isinstance(child, _SCOPE_NODES):
            continue
        yield child
        stack.extend(ast.iter_child_nodes(child))


def _named_expr_targets(exprs: Iterable[Optional[ast.AST]], into: Set[str]) -> None:
    """Walrus-bound names inside the given head expressions."""
    for expr in exprs:
        if expr is None:
            continue
        for node in _walk_no_scope(expr):
            if isinstance(node, ast.NamedExpr):
                _target_names(node.target, into)


def head_defs(stmt: ast.stmt) -> Set[str]:
    """Names bound by *stmt*'s head — the part living in its CFG block.

    Compound statements bind only through their head (a ``for`` its
    target, a ``with`` its ``as`` vars); their bodies live in other
    blocks and contribute definitions there.
    """
    out: Set[str] = set()
    if isinstance(stmt, ast.Assign):
        for target in stmt.targets:
            _target_names(target, out)
        _named_expr_targets([stmt.value], out)
    elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
        _target_names(stmt.target, out)
        _named_expr_targets([getattr(stmt, "value", None)], out)
    elif isinstance(stmt, (ast.For, ast.AsyncFor)):
        _target_names(stmt.target, out)
        _named_expr_targets([stmt.iter], out)
    elif isinstance(stmt, (ast.While, ast.If)):
        _named_expr_targets([stmt.test], out)
    elif isinstance(stmt, (ast.With, ast.AsyncWith)):
        for item in stmt.items:
            if item.optional_vars is not None:
                _target_names(item.optional_vars, out)
        _named_expr_targets([item.context_expr for item in stmt.items], out)
    elif isinstance(stmt, (ast.Import, ast.ImportFrom)):
        for alias in stmt.names:
            out.add(alias.asname or alias.name.split(".")[0])
    elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
        out.add(stmt.name)
    elif isinstance(stmt, ast.Delete):
        for target in stmt.targets:
            _target_names(target, out)
    elif isinstance(stmt, ast.Try):
        pass  # the try head binds nothing
    else:
        _named_expr_targets([stmt], out)
    return out


def _apply_stmt(stmt: ast.stmt, state: _State, site: Tuple[int, int]) -> _State:
    """Strong-update *state* with the definitions *stmt*'s head makes."""
    bound = head_defs(stmt)
    if not bound:
        return state
    out = dict(state)
    for name in bound:
        out[name] = frozenset({site})
    return out


class _ReachingDefs(Domain):
    """Powerset-of-def-sites domain for the generic worklist solver."""

    def __init__(self, cfg: CFG, params: Sequence[str]) -> None:
        self._cfg = cfg
        self._params = tuple(params)

    def initial(self) -> _State:
        """Entry state: every parameter defined at :data:`PARAM_SITE`."""
        return {name: frozenset({PARAM_SITE}) for name in self._params}

    def join(self, a: _State, b: _State) -> _State:
        """Pointwise union of reaching-definition sites."""
        out = dict(a)
        for name, sites in b.items():
            out[name] = out.get(name, frozenset()) | sites
        return out

    def transfer(self, block: Block, state: _State) -> _State:
        """Apply every statement head in *block* in order."""
        for idx, stmt in enumerate(block.stmts):
            state = _apply_stmt(stmt, state, (block.id, idx))
        return state


def _param_names(fn: "ast.FunctionDef | ast.AsyncFunctionDef") -> List[str]:
    names: List[str] = []
    args = fn.args
    for group in (args.posonlyargs, args.args, args.kwonlyargs):
        names.extend(a.arg for a in group)
    for special in (args.vararg, args.kwarg):
        if special is not None:
            names.append(special.arg)
    return names


class FunctionFlow:
    """CFG + reaching definitions + loop summaries for one function."""

    def __init__(self, fn: "ast.FunctionDef | ast.AsyncFunctionDef") -> None:
        self.fn = fn
        self.cfg = build_cfg(fn)
        #: id(stmt) -> (block_id, index within block) for every lowered stmt.
        self.where: Dict[int, Tuple[int, int]] = {}
        for block in self.cfg.blocks:
            for idx, stmt in enumerate(block.stmts):
                self.where[id(stmt)] = (block.id, idx)
        self.result = solve(self.cfg, _ReachingDefs(self.cfg, _param_names(fn)))
        self._mutated: Dict[int, Set[str]] = {}
        self._handler_names: Set[str] = {
            node.name
            for node in ast.walk(fn)
            if isinstance(node, ast.ExceptHandler) and node.name
        }

    # ------------------------------------------------------------------
    def block_of(self, stmt: ast.stmt) -> Optional[int]:
        """Id of the block holding *stmt*'s head, if it was lowered."""
        site = self.where.get(id(stmt))
        return site[0] if site is not None else None

    def loops_of(self, stmt: ast.stmt) -> Tuple[int, ...]:
        """Loop-head block ids enclosing *stmt*, outermost first."""
        site = self.where.get(id(stmt))
        if site is None:
            return ()
        return self.cfg.block(site[0]).loops

    def loop_heads(self) -> List[int]:
        """Every loop-head block id, in block-id (construction) order."""
        return [b.id for b in self.cfg.blocks if b.loops and b.loops[-1] == b.id]

    def loop_stmt(self, head: int) -> ast.stmt:
        """The ``for``/``while`` statement whose head is block *head*."""
        return self.cfg.block(head).stmts[0]

    def defs_before(self, stmt: ast.stmt) -> Optional[_State]:
        """Reaching-defs state just before *stmt*; ``None`` if unreachable."""
        site = self.where.get(id(stmt))
        if site is None:
            return None
        block_id, idx = site
        state = self.result.in_states.get(block_id)
        if state is None:
            return None
        block = self.cfg.block(block_id)
        for i in range(idx):
            state = _apply_stmt(block.stmts[i], state, (block_id, i))
        return state

    def site_outside_loop(self, site: Tuple[int, int], head: int) -> bool:
        """Whether definition *site* lies outside the loop headed at *head*."""
        if site == PARAM_SITE:
            return True
        return head not in self.cfg.block(site[0]).loops

    # ------------------------------------------------------------------
    def mutated_in_loop(self, head: int) -> Set[str]:
        """Root names possibly mutated (not rebound) inside loop *head*.

        Covers attribute/subscript stores, ``+=`` onto attributes or
        elements, and in-place mutator method calls — the ways a value
        changes across iterations without a new definition site.
        """
        cached = self._mutated.get(head)
        if cached is not None:
            return cached
        mutated: Set[str] = set()
        for node in _walk_no_scope(self.loop_stmt(head)):
            if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for target in targets:
                    if isinstance(target, (ast.Subscript, ast.Attribute)):
                        root = _root_name(target)
                        if root is not None:
                            mutated.add(root)
            elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                if node.func.attr in _MUTATORS:
                    root = _root_name(node.func.value)
                    if root is not None:
                        mutated.add(root)
        self._mutated[head] = mutated
        return mutated

    # ------------------------------------------------------------------
    def invariant_chain(
        self,
        exprs: Sequence[ast.AST],
        stmt: ast.stmt,
        head: int,
    ) -> Optional[List[Operand]]:
        """Prove every expression in *exprs* invariant w.r.t. loop *head*.

        Returns the operand chain (one entry per distinct name read, in
        first-use order) when the proof goes through, else ``None``.
        An empty chain means the expressions read only constants.
        """
        state = self.defs_before(stmt)
        if state is None:
            return None
        mutated = self.mutated_in_loop(head)
        chain: List[Operand] = []
        seen: Set[str] = set()
        for expr in exprs:
            nodes = [expr]
            nodes.extend(_walk_no_scope(expr))
            for node in nodes:
                if not isinstance(node, _PURE_EXPR_NODES):
                    return None
                if not isinstance(node, ast.Name):
                    continue
                if isinstance(node.ctx, ast.Store):
                    return None  # a walrus target is a per-iteration def
                name = node.id
                if name in self._handler_names or name in mutated:
                    return None
                if name in seen:
                    continue
                seen.add(name)
                operand = self._operand_for(name, state, head)
                if operand is None:
                    return None
                chain.append(operand)
        return chain

    def _operand_for(
        self, name: str, state: _State, head: int
    ) -> Optional[Operand]:
        sites = state.get(name)
        if sites is None:
            return Operand(name=name, bound_at="outer scope")
        if not all(self.site_outside_loop(site, head) for site in sites):
            return None
        lines = tuple(
            sorted(
                self.cfg.block(block).stmts[idx].lineno
                for block, idx in sites
                if (block, idx) != PARAM_SITE
            )
        )
        if not lines:
            return Operand(name=name, bound_at="parameter")
        where = "bound at line " + ",".join(str(n) for n in lines)
        return Operand(name=name, bound_at=where, lines=lines)


def _root_name(node: ast.AST) -> Optional[str]:
    """Base ``Name`` of an attribute/subscript chain, if any."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    return node.id if isinstance(node, ast.Name) else None
