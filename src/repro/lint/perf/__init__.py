"""deshheat — CFG-backed performance analysis for deshlint.

The Desh reproduction's headline systems claim is per-prediction
latency (Fig. 10: 0.65 ms), and the ROADMAP's north star is "as fast
as the hardware allows".  This package adds the rule family that
polices it statically:

=====  ==============================================================
P1     Vectorization — Python-level loops that iterate an ndarray
       applying per-element numpy ops, per-iteration ufunc calls over
       loop-indexed slices, and growth-by-concatenation
       (``arr = np.concatenate(...)`` reassigned inside a loop).
P2     Allocation in loop — array constructors, non-empty dict/list
       builds and un-gated eagerly-formatted logging in loop bodies
       whose arguments are *provably* loop-invariant (a reaching-
       definitions pass on the deshflow solver), reported with the
       exact invariant operand chain.
P3     Hidden quadratics — ``list.insert(0, ...)``, ``in`` membership
       tests against lists built in the same function, and repeated
       ``str``/``ndarray`` ``+=``-style accumulation in loops.
=====  ==============================================================

All three reuse the deshflow CFG (loop-nesting annotations on
:class:`~repro.lint.flow.cfg.Block`) and the generic worklist solver;
the shared machinery lives in :mod:`~repro.lint.perf.invariant`
(reaching definitions + loop-invariance proofs) and
:mod:`~repro.lint.perf.typeinfo` (syntactic local kind inference).

The profile-guided half lives in :mod:`~repro.lint.perf.profile`: a
reader for ``repro trace`` JSONL span exports and metrics-registry
snapshots that attributes measured milliseconds to qualified function
names, ranks findings by hotness, and escalates findings on the
measured prediction/fit paths to error-level SARIF severity while
demoting cold-code findings to notes.
"""

from .invariant import PARAM_SITE, FunctionFlow
from .profile import HotnessProfile, RankedFinding, apply_profile
from .typeinfo import KIND_DICT, KIND_LIST, KIND_NDARRAY, KIND_STR, infer_kinds

__all__ = [
    "FunctionFlow",
    "HotnessProfile",
    "KIND_DICT",
    "KIND_LIST",
    "KIND_NDARRAY",
    "KIND_STR",
    "PARAM_SITE",
    "RankedFinding",
    "apply_profile",
    "infer_kinds",
]
