"""Shared AST name-resolution helpers for deshlint rules.

Rules that reason about *what a call refers to* (R1 RNG discipline, R2
stage purity, R4 exception hygiene) all need the same primitive: expand
a ``Name``/``Attribute`` chain against the module's import aliases into
a best-effort dotted path like ``numpy.random.randint``.  This is a
purely syntactic resolution — no imports are executed.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

__all__ = ["ImportMap", "build_import_map", "dotted_name", "resolve_dotted"]


@dataclass
class ImportMap:
    """Local name -> dotted origin, from one module's import statements."""

    #: ``import numpy as np`` -> {"np": "numpy"}
    modules: dict[str, str] = field(default_factory=dict)
    #: ``from numpy.random import rand as r`` -> {"r": "numpy.random.rand"}
    names: dict[str, str] = field(default_factory=dict)
    #: dotted module path of the module itself (for relative imports)
    module_path: str = ""


def _resolve_relative(module_path: str, level: int, target: str) -> str:
    """Absolute dotted path of a ``from ..x import y`` target."""
    if level == 0:
        return target
    parts = module_path.split(".") if module_path else []
    # level 1 = current package; the module's own name is the last part.
    base = parts[: len(parts) - level]
    if target:
        base = base + target.split(".")
    return ".".join(base)


def build_import_map(tree: ast.AST, module_path: str = "") -> ImportMap:
    """Collect every import alias binding in *tree* (module level or not)."""
    imap = ImportMap(module_path=module_path)
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                origin = alias.name if alias.asname else alias.name.split(".")[0]
                imap.modules[local] = origin
        elif isinstance(node, ast.ImportFrom):
            base = _resolve_relative(module_path, node.level, node.module or "")
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                imap.names[local] = f"{base}.{alias.name}" if base else alias.name
    return imap


def dotted_name(node: ast.AST) -> "str | None":
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def resolve_dotted(node: ast.AST, imap: ImportMap) -> "str | None":
    """Expand a Name/Attribute chain through the module's import aliases.

    ``np.random.randint`` with ``import numpy as np`` resolves to
    ``numpy.random.randint``; ``time()`` after ``from time import time``
    resolves to ``time.time``.  Unresolvable heads return the raw dotted
    text so callers can still pattern-match on suffixes.
    """
    raw = dotted_name(node)
    if raw is None:
        return None
    head, _, rest = raw.partition(".")
    if head in imap.names:
        origin = imap.names[head]
    elif head in imap.modules:
        origin = imap.modules[head]
    else:
        return raw
    return f"{origin}.{rest}" if rest else origin
