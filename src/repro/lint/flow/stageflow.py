"""F2 — stage artifact flow: producer/consumer consistency over the DAG.

Every ``Stage`` subclass declares ``name``/``deps`` and reads upstream
artifacts through ``ctx.value("name")`` (or ``ctx.inputs["name"]``).
This rule extracts those reads statically and checks them against the
set of producers visible in the linted project:

* a read of an artifact the stage did not declare in ``deps`` — the
  runner only populates declared inputs, so this is a guaranteed
  ``KeyError`` at run time;
* an artifact consumed (read or declared) that **no** stage produces;
* a producer/consumer *type* mismatch, proved from the producer's
  ``run`` return annotation against the consumer's annotated read
  (``art: ParseArtifact = ctx.value("parse")``);
* an artifact produced but never consumed by any other stage — dead
  weight in the DAG — unless the stage marks itself ``terminal = True``
  (sink stages: their artifact is the pipeline's *output*);
* two stages claiming the same ``name`` (the artifact store keys
  directories by name, so duplicates silently overwrite).

Declared-but-unread deps are deliberately **not** flagged: a dep edge
without a read is how a stage keys its cache fingerprint on an
upstream artifact it does not consume directly (``Phase3Stage``).

Soundness caveat: the producer set is the linted module set.  Linting a
single file that consumes artifacts produced elsewhere reports them as
unproduced — run F2 over the whole package, as the CI gate does.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..findings import Finding
from ..rules import ModuleInfo, Rule, register
from ..rules.purity import _ctx_param, _stage_classes

__all__ = ["StageFlowRule"]

#: typing aliases folded onto their builtin spellings before comparison.
_GENERIC_ALIASES = {"List": "list", "Tuple": "tuple", "Dict": "dict", "Set": "set"}
_OPTIONAL_RE = re.compile(r"^(?:typing\.)?Optional\[(?P<inner>.*)\]$")
_DOTTED_RE = re.compile(r"\b(?:[A-Za-z_]\w*\.)+(?P<last>[A-Za-z_]\w*)")
_SIMPLE_RE = re.compile(r"^[A-Za-z_]\w*$")
#: annotations that promise nothing — never part of a provable mismatch.
_ANY_TYPES = {"object", "Any", "None"}


@dataclass
class _StageDecl:
    """Statically-extracted facts about one concrete Stage subclass."""

    module: ModuleInfo
    node: ast.ClassDef
    name: str
    deps: Tuple[str, ...]
    terminal: bool = False
    #: (artifact name, read expression node, consumer annotation or None)
    reads: List[Tuple[str, ast.AST, Optional[str]]] = field(default_factory=list)
    #: ``run``'s return annotation text, when present.
    returns: Optional[str] = None


def _const_str(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def _str_tuple(node: ast.AST) -> Optional[Tuple[str, ...]]:
    if not isinstance(node, (ast.Tuple, ast.List)):
        return None
    out = []
    for elt in node.elts:
        text = _const_str(elt)
        if text is None:
            return None
        out.append(text)
    return tuple(out)


def _read_artifact(node: ast.AST, ctx: str) -> Optional[str]:
    """The artifact name of a ``ctx.value("x")``/``ctx.inputs["x"]`` read."""
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "value"
        and isinstance(node.func.value, ast.Name)
        and node.func.value.id == ctx
        and len(node.args) == 1
    ):
        return _const_str(node.args[0])
    if (
        isinstance(node, ast.Subscript)
        and isinstance(node.value, ast.Attribute)
        and node.value.attr == "inputs"
        and isinstance(node.value.value, ast.Name)
        and node.value.value.id == ctx
    ):
        return _const_str(node.slice)
    return None


def _extract_stage(module: ModuleInfo, cls: ast.ClassDef) -> Optional[_StageDecl]:
    name = ""
    deps: Tuple[str, ...] = ()
    terminal = False
    run_node: Optional[ast.FunctionDef] = None
    for stmt in cls.body:
        target = None
        value = None
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target, value = stmt.targets[0], stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            target, value = stmt.target, stmt.value
        if isinstance(target, ast.Name) and value is not None:
            if target.id == "name":
                name = _const_str(value) or ""
            elif target.id == "deps":
                deps = _str_tuple(value) or ()
            elif target.id == "terminal":
                terminal = isinstance(value, ast.Constant) and value.value is True
        if isinstance(stmt, ast.FunctionDef) and stmt.name == "run":
            run_node = stmt
    if not name or run_node is None:
        return None  # abstract/partial class: nothing checkable
    decl = _StageDecl(module, cls, name, deps, terminal)
    if run_node.returns is not None:
        decl.returns = ast.unparse(run_node.returns)
    ctx = _ctx_param(run_node)
    if ctx is None:
        return decl
    annotated: Dict[int, str] = {}
    for node in ast.walk(run_node):
        if (
            isinstance(node, ast.AnnAssign)
            and node.value is not None
            and _read_artifact(node.value, ctx) is not None
        ):
            annotated[id(node.value)] = ast.unparse(node.annotation)
    for node in ast.walk(run_node):
        artifact = _read_artifact(node, ctx)
        if artifact is not None:
            decl.reads.append((artifact, node, annotated.get(id(node))))
    return decl


def _normalize_type(text: str) -> str:
    """Canonical spelling for provable-mismatch comparison only."""
    text = text.strip().strip("'\"")
    while True:
        match = _OPTIONAL_RE.match(text)
        if match is None:
            break
        text = match.group("inner").strip()
    text = _DOTTED_RE.sub(lambda m: m.group("last"), text)
    for alias, builtin in _GENERIC_ALIASES.items():
        text = re.sub(rf"\b{alias}\b", builtin, text)
    return re.sub(r"\s+", "", text)


def _provable_mismatch(produced: str, consumed: str) -> bool:
    """True only when both annotations are simple and plainly disagree."""
    a, b = _normalize_type(produced), _normalize_type(consumed)
    if a == b or a in _ANY_TYPES or b in _ANY_TYPES:
        return False
    return bool(_SIMPLE_RE.match(a)) and bool(_SIMPLE_RE.match(b))


@register
class StageFlowRule(Rule):
    """Producer/consumer consistency of stage artifacts across the DAG."""

    id = "F2"
    category = "dataflow"
    summary = (
        "stage artifact flow: every ctx.value() read must be a declared "
        "dep with a producer of a compatible type; non-terminal artifacts "
        "must have a consumer"
    )

    def check_project(self, modules: Sequence[ModuleInfo]) -> Sequence[Finding]:
        """Cross-check every extracted stage against the producer set."""
        by_module = {m.module_path or m.path: m for m in modules}
        stages: List[_StageDecl] = []
        for mod, cls_name in sorted(_stage_classes(modules)):
            module = by_module[mod]
            cls = next(
                (
                    n
                    for n in module.tree.body
                    if isinstance(n, ast.ClassDef) and n.name == cls_name
                ),
                None,
            )
            if cls is None:
                continue
            decl = _extract_stage(module, cls)
            if decl is not None:
                stages.append(decl)
        findings: List[Finding] = []
        producers: Dict[str, _StageDecl] = {}
        for decl in stages:
            prior = producers.get(decl.name)
            if prior is not None:
                findings.append(
                    decl.module.finding(
                        decl.node,
                        self.id,
                        f"duplicate stage name {decl.name!r} (also "
                        f"{prior.node.name} in {prior.module.path}); "
                        "artifact directories would collide",
                    )
                )
            else:
                producers[decl.name] = decl
        for decl in stages:
            findings.extend(self._check_stage(decl, producers))
        findings.extend(self._unconsumed(stages))
        return findings

    def _check_stage(
        self, decl: _StageDecl, producers: Dict[str, _StageDecl]
    ) -> List[Finding]:
        out: List[Finding] = []
        declared = set(decl.deps)
        seen: set = set()
        for artifact, node, annotation in decl.reads:
            if artifact not in declared and artifact not in seen:
                seen.add(artifact)
                out.append(
                    decl.module.finding(
                        node,
                        self.id,
                        f"stage {decl.name!r} reads artifact {artifact!r} "
                        f"without declaring it in deps {decl.deps!r}; the "
                        "runner only provides declared inputs (KeyError at "
                        "run time, and the cache fingerprint misses the edge)",
                    )
                )
            producer = producers.get(artifact)
            if producer is None:
                key = ("missing", artifact)
                if key not in seen:
                    seen.add(key)
                    out.append(
                        decl.module.finding(
                            node,
                            self.id,
                            f"stage {decl.name!r} consumes artifact "
                            f"{artifact!r} but no stage produces it",
                        )
                    )
            elif (
                annotation is not None
                and producer.returns is not None
                and _provable_mismatch(producer.returns, annotation)
            ):
                out.append(
                    decl.module.finding(
                        node,
                        self.id,
                        f"stage {decl.name!r} reads {artifact!r} as "
                        f"{annotation} but its producer "
                        f"{producer.node.name}.run returns {producer.returns}",
                    )
                )
        for dep in decl.deps:
            if dep not in producers:
                out.append(
                    decl.module.finding(
                        decl.node,
                        self.id,
                        f"stage {decl.name!r} declares dep {dep!r} but no "
                        "stage produces it",
                    )
                )
        return out

    def _unconsumed(self, stages: List[_StageDecl]) -> List[Finding]:
        if len(stages) < 2:
            return []  # a lone stage is trivially the pipeline output
        consumed_by: Dict[str, set] = {}
        for decl in stages:
            for artifact in sorted(set(decl.deps) | {a for a, _, _ in decl.reads}):
                consumed_by.setdefault(artifact, set()).add(decl.name)
        out: List[Finding] = []
        for decl in stages:
            consumers = consumed_by.get(decl.name, set()) - {decl.name}
            if decl.terminal or consumers:
                continue
            out.append(
                decl.module.finding(
                    decl.node,
                    self.id,
                    f"stage {decl.name!r} produces an artifact no other "
                    "stage consumes; mark it `terminal = True` if it is a "
                    "pipeline output, otherwise it is dead weight in the DAG",
                )
            )
        return out
