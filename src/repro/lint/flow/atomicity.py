"""F4 — atomicity: self.* windows that span an await without a lock.

asyncio gives every coroutine run-to-completion semantics *between*
await points: code with no await in the middle is atomic with respect
to every other task on the loop.  The flip side is that any
check-then-act or read-modify-write on shared ``self.*`` state that
*does* cross an await is a race — another task can observe or mutate
the attribute inside the window, and the post-await write acts on a
stale read.  These are exactly the bugs a soak test almost never
reproduces (the interleaving is rare) but a prover can rule out.

The analysis is a lockset-flavoured forward dataflow over each
``async def`` method (functions without a ``self`` receiver have no
cross-task shared state and are skipped):

* a **read** of ``self.attr`` opens a window: the state records the
  read site together with the set of locks lexically held there;
* a statement whose head contains an await (``is_yield_point``) marks
  every open window as *crossed*, recording the await site and the
  locks held across it;
* a **write** to ``self.attr`` (assignment/del/augmented assignment
  targets, or a mutator-method call like ``self.items.append(...)``)
  closes the window.  If the window was crossed and no single lock was
  held at the read, across the await, *and* at the write, the write is
  reported with the full interleaving window (read site + await site)
  as related locations.  Either way the write kills the window — the
  next read starts a fresh one.

Locks are recognized lexically: ``async with self._lock:`` regions
where ``_lock`` is an attribute assigned ``asyncio.Lock()`` /
``Condition()`` / ``Semaphore()`` somewhere in the class (or whose
name contains ``lock``/``mutex`` as a fallback).  A lock held across
the whole window proves atomicity; a lock released and re-acquired
around the await does not, and still fires — that is the point.

Deliberately **intra**procedural: a ``self.helper()`` call is treated
as a read of ``helper``, not inlined.  Inlining over-reports optimistic
retry loops (``ShardQueue.offer_wait``) many times over; the single
annotated justification at the retry site documents the pattern once.
Single-writer designs that the analysis cannot see are the other
intended use of ``# deshlint: allow[F4] <why>``.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..findings import Finding
from ..rules import ModuleInfo, Rule, register
from .cfg import Block, build_cfg, head_awaits
from .solver import Domain, solve

__all__ = ["AtomicityRule"]

#: asyncio primitives whose instances act as locks for the analysis.
_LOCK_FACTORIES = {"Lock", "Condition", "Semaphore", "BoundedSemaphore"}

#: Method names that mutate their receiver in place (superset of R2's
#: container mutators, extended with the serve-layer vocabulary).
_WRITE_METHODS = {
    "append", "appendleft", "extend", "extendleft", "insert", "remove",
    "pop", "popleft", "popitem", "clear", "update", "setdefault", "add",
    "discard", "sort", "reverse", "record", "reserve", "release",
    "commit", "commit_reserved", "set", "put", "put_nowait",
}

# A window entry: (read_line, read_col, read_locks, await_line, await_locks)
# where await_line is None until the window crosses a yield point.
_Entry = Tuple[int, int, FrozenSet[str], Optional[int], Optional[FrozenSet[str]]]
# Abstract state: first self-attribute component -> open windows.
_State = Dict[str, FrozenSet[_Entry]]


def _self_attr_chain(node: ast.AST) -> Optional[str]:
    """First attribute component of a ``self.x...`` chain, else None."""
    parts: List[str] = []
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        if isinstance(node, ast.Attribute):
            parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name) and node.id == "self" and parts:
        return parts[-1]
    return None


def _head_nodes(stmt: ast.stmt) -> List[ast.AST]:
    """AST nodes evaluated by *stmt*'s block-resident head.

    Mirrors :func:`~.cfg.head_awaits`: for compound statements only the
    controlling expression lives in the head block — the body statements
    are separate CFG blocks and must not be scanned twice.
    """
    if isinstance(stmt, (ast.If, ast.While)):
        return [stmt.test]
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return [stmt.iter, stmt.target]
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        out: List[ast.AST] = []
        for item in stmt.items:
            out.append(item.context_expr)
            if item.optional_vars is not None:
                out.append(item.optional_vars)
        return out
    if isinstance(stmt, ast.Try):
        return []
    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
        return []  # defining a nested scope touches no shared state
    return [stmt]


def _walk_head(node: ast.AST):
    """Walk *node* without descending into nested function scopes."""
    stack = [node]
    while stack:
        cur = stack.pop()
        yield cur
        for child in ast.iter_child_nodes(cur):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            stack.append(child)


def _lock_attrs(cls: ast.ClassDef) -> Set[str]:
    """Attribute names assigned an asyncio lock primitive in *cls*."""
    out: Set[str] = set()
    for node in ast.walk(cls):
        if not isinstance(node, ast.Assign) or not isinstance(node.value, ast.Call):
            continue
        func = node.value.func
        name = func.attr if isinstance(func, ast.Attribute) else (
            func.id if isinstance(func, ast.Name) else ""
        )
        if name not in _LOCK_FACTORIES:
            continue
        for target in node.targets:
            attr = _self_attr_chain(target)
            if attr:
                out.add(attr)
    return out


def _lock_key(expr: ast.AST, known_locks: Set[str]) -> Optional[str]:
    """Stable key for a lock expression in an ``async with`` item."""
    attr = _self_attr_chain(expr)
    if attr is not None:
        if attr in known_locks or "lock" in attr.lower() or "mutex" in attr.lower():
            return f"self.{attr}"
        return None
    if isinstance(expr, ast.Name):
        low = expr.id.lower()
        if "lock" in low or "mutex" in low:
            return expr.id
    return None


def _held_locks(
    fn: ast.AsyncFunctionDef, known_locks: Set[str]
) -> Dict[int, FrozenSet[str]]:
    """Map ``id(stmt)`` -> locks lexically held at that statement."""
    held: Dict[int, FrozenSet[str]] = {}

    def visit(stmts: Sequence[ast.stmt], locks: FrozenSet[str]) -> None:
        for stmt in stmts:
            inner = locks
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                acquired = {
                    key
                    for item in stmt.items
                    if (key := _lock_key(item.context_expr, known_locks))
                }
                inner = locks | frozenset(acquired)
            # The compound head runs with the *outer* set (the lock is
            # only held once __aenter__ returns); bodies get ``inner``.
            held[id(stmt)] = locks
            for field_name in ("body", "orelse", "finalbody"):
                child = getattr(stmt, field_name, None)
                if isinstance(child, list) and child and isinstance(
                    child[0], ast.stmt
                ):
                    visit(child, inner)
            for handler in getattr(stmt, "handlers", []) or []:
                visit(handler.body, inner)

    visit(fn.body, frozenset())
    return held


class _AtomicityDomain(Domain[_State]):
    """Forward domain tracking open read windows per self-attribute."""

    def __init__(
        self,
        module: ModuleInfo,
        rule_id: str,
        qualname: str,
        held: Dict[int, FrozenSet[str]],
    ) -> None:
        self.module = module
        self.rule_id = rule_id
        self.qualname = qualname
        self.held = held
        # (write_line, write_col, attr, read_line) -> Finding; filled
        # during transfers, harvested after the fixpoint.  Keyed so the
        # same violation discovered on every solver pass reports once.
        self.reports: Dict[Tuple[int, int, str, int], Finding] = {}

    def initial(self) -> _State:
        return {}

    def join(self, a: _State, b: _State) -> _State:
        out = dict(a)
        for attr, entries in b.items():
            out[attr] = out.get(attr, frozenset()) | entries
        return out

    def transfer(self, block: Block, state: _State) -> _State:
        out = {attr: entries for attr, entries in state.items()}
        for stmt in block.stmts:
            locks = self.held.get(id(stmt), frozenset())
            reads, writes = self._accesses(stmt)
            for attr, node in reads:
                entry: _Entry = (
                    getattr(node, "lineno", stmt.lineno),
                    getattr(node, "col_offset", stmt.col_offset),
                    locks,
                    None,
                    None,
                )
                out[attr] = out.get(attr, frozenset()) | {entry}
            awaits = head_awaits(stmt)
            if awaits:
                await_line = min(
                    getattr(a, "lineno", stmt.lineno) for a in awaits
                )
                out = {
                    attr: frozenset(
                        e if e[3] is not None else (e[0], e[1], e[2], await_line, locks)
                        for e in entries
                    )
                    for attr, entries in out.items()
                }
            for attr, node in writes:
                for e in out.get(attr, frozenset()):
                    if e[3] is None:
                        continue
                    common = e[2] & (e[4] or frozenset()) & locks
                    if not common:
                        self._report(stmt, node, attr, e)
                out[attr] = frozenset()
        return out

    def _accesses(
        self, stmt: ast.stmt
    ) -> Tuple[List[Tuple[str, ast.AST]], List[Tuple[str, ast.AST]]]:
        """(reads, writes) of self-attributes in *stmt*'s head."""
        reads: List[Tuple[str, ast.AST]] = []
        writes: List[Tuple[str, ast.AST]] = []
        for head in _head_nodes(stmt):
            for node in _walk_head(head):
                if isinstance(node, ast.Attribute) and isinstance(
                    node.ctx, ast.Load
                ):
                    attr = _self_attr_chain(node)
                    if attr:
                        reads.append((attr, node))
                elif isinstance(node, (ast.Attribute, ast.Subscript)) and isinstance(
                    getattr(node, "ctx", None), (ast.Store, ast.Del)
                ):
                    attr = _self_attr_chain(node)
                    if attr:
                        writes.append((attr, node))
                        if isinstance(stmt, ast.AugAssign):
                            reads.append((attr, node))
                elif isinstance(node, ast.Call) and isinstance(
                    node.func, ast.Attribute
                ):
                    if node.func.attr in _WRITE_METHODS:
                        attr = _self_attr_chain(node.func.value)
                        if attr:
                            writes.append((attr, node))
        return reads, writes

    def _report(
        self, stmt: ast.stmt, node: ast.AST, attr: str, entry: _Entry
    ) -> None:
        read_line, read_col, read_locks, await_line, await_locks = entry
        key = (
            getattr(node, "lineno", stmt.lineno),
            getattr(node, "col_offset", stmt.col_offset),
            attr,
            read_line,
        )
        if key in self.reports:
            return
        window = (
            f"read at line {read_line} -> await at line {await_line} "
            f"-> write at line {key[0]}"
        )
        if read_locks or await_locks:
            locks_note = (
                " (no single lock spans the window: "
                f"read holds {sorted(read_locks) or '[]'}, "
                f"await holds {sorted(await_locks or ()) or '[]'})"
            )
        else:
            locks_note = ""
        message = (
            f"{self.qualname} writes self.{attr} after reading it across "
            f"an await point ({window}); another task can interleave at "
            "the await and make the read stale — hold one asyncio.Lock "
            "across the whole window, or annotate the single-writer "
            f"justification{locks_note}"
        )
        related = (
            self.module.site(
                _FakeLoc(read_line, read_col),
                f"interleaving window opens: self.{attr} read here",
            ),
            self.module.site(
                _FakeLoc(await_line or read_line, 0),
                "control yields to the event loop here",
            ),
        )
        self.reports[key] = self.module.finding(
            node, self.rule_id, message, related=related
        )


class _FakeLoc:
    """Minimal location carrier for sites known only by line/col."""

    def __init__(self, lineno: int, col_offset: int) -> None:
        self.lineno = lineno
        self.col_offset = col_offset


@register
class AtomicityRule(Rule):
    """self.* check-then-act must not span an await without a lock."""

    id = "F4"
    category = "dataflow"
    summary = (
        "async atomicity: reads of shared self.* state must not be "
        "separated from the dependent write by an await point unless "
        "one asyncio.Lock is held across the whole window"
    )

    def check_module(self, module: ModuleInfo) -> Sequence[Finding]:
        """Analyze every async method of every top-level class."""
        findings: List[Finding] = []
        for cls in module.tree.body:
            if not isinstance(cls, ast.ClassDef):
                continue
            known_locks = _lock_attrs(cls)
            for item in cls.body:
                if not isinstance(item, ast.AsyncFunctionDef):
                    continue
                args = item.args.posonlyargs + item.args.args
                if not args or args[0].arg != "self":
                    continue
                findings.extend(
                    self._check_method(module, cls, item, known_locks)
                )
        findings.sort(key=lambda f: (f.line, f.col, f.message))
        return findings

    def _check_method(
        self,
        module: ModuleInfo,
        cls: ast.ClassDef,
        fn: ast.AsyncFunctionDef,
        known_locks: Set[str],
    ) -> List[Finding]:
        cfg = build_cfg(fn)
        domain = _AtomicityDomain(
            module,
            self.id,
            f"{cls.name}.{fn.name}",
            _held_locks(fn, known_locks),
        )
        solve(cfg, domain)
        return list(domain.reports.values())
