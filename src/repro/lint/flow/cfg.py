"""Per-function control-flow graph over the Python AST.

:func:`build_cfg` lowers one function body into basic blocks of
*statement* granularity.  Compound statements contribute only their
head to a block — an ``if`` head evaluates its test, a ``for`` head
binds its target — while their bodies become separate blocks wired with
the appropriate edges.  The graph is deliberately a sound
over-approximation of CPython's actual control flow:

* every block created inside a ``try`` body gets an edge to every
  handler of that ``try`` (any statement may raise);
* ``raise`` jumps to the innermost enclosing handler when one exists,
  else to the exit block;
* ``finally`` bodies are sequenced on the fall-through paths; a
  ``return``/``raise`` that would dynamically route *through* a
  ``finally`` edges straight to the exit/handler instead (documented
  soundness caveat — the analyses only ever lose precision from it);
* ``with`` bodies are sequenced linearly (context-manager exceptional
  edges are ignored);
* comprehensions are expressions and never split a block.

**Async awareness.**  The builder already lowers ``async for`` /
``async with`` structurally (same shape as their sync twins); what the
async analyses additionally need is *where control may leave the
coroutine*.  :func:`head_awaits` reports the await expressions a
statement's *head* evaluates — the part that actually lives in the
block, not a compound's body — and :func:`is_yield_point` folds that to
a bool.  An ``async for`` head is a yield point (``__anext__`` is
awaited on every iteration, including the exhausting one), an ``async
with`` head likewise (``__aenter__``; ``__aexit__`` is approximated to
the head too), and ``await`` anywhere in a simple statement — including
inside comprehensions and call arguments such as ``asyncio.gather`` /
``create_task`` fan-out — marks that statement.  Nested function
definitions and lambdas are *not* descended into: their awaits belong
to the inner coroutine, not this one.

Block ids are assigned in construction order, so :meth:`CFG.describe`
output is deterministic — the golden-CFG tests compare it verbatim;
yield-point statements render with a ``~`` suffix (``Assign~``).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import List, Optional

__all__ = ["Block", "CFG", "build_cfg", "head_awaits", "is_yield_point"]

#: Scope boundaries whose inner awaits belong to a different coroutine.
_SCOPE_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)


def _own_awaits(node: ast.AST) -> List[ast.AST]:
    """``Await`` nodes inside *node* without crossing a scope boundary."""
    out: List[ast.AST] = []
    stack = list(ast.iter_child_nodes(node))
    while stack:
        child = stack.pop()
        if isinstance(child, _SCOPE_NODES):
            continue
        if isinstance(child, ast.Await):
            out.append(child)
        if isinstance(child, ast.comprehension) and child.is_async:
            # ``async for`` inside a comprehension awaits per element.
            out.append(child.iter)
        stack.extend(ast.iter_child_nodes(child))
    return out


def head_awaits(stmt: ast.stmt) -> List[ast.AST]:
    """Await points evaluated by *stmt*'s head (block-resident part).

    Compound statements contribute only the expressions their head
    evaluates — an ``if`` its test, a loop its iterable — because their
    bodies live in other blocks and are analyzed there.  ``async for``
    and ``async with`` heads are themselves await points.
    """
    if isinstance(stmt, ast.AsyncFor):
        return [stmt] + _own_awaits(stmt.iter)
    if isinstance(stmt, ast.AsyncWith):
        out: List[ast.AST] = [stmt]
        for item in stmt.items:
            out.extend(_own_awaits(item.context_expr))
        return out
    if isinstance(stmt, (ast.If, ast.While)):
        return _own_awaits(stmt.test)
    if isinstance(stmt, ast.For):
        return _own_awaits(stmt.iter)
    if isinstance(stmt, ast.With):
        out = []
        for item in stmt.items:
            out.extend(_own_awaits(item.context_expr))
        return out
    if isinstance(stmt, ast.Try):
        return []  # the try head evaluates nothing
    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
        # Defining a nested function/class runs no awaits — the inner
        # body's suspension points belong to the inner scope.
        return []
    return _own_awaits(stmt)


def is_yield_point(stmt: ast.stmt) -> bool:
    """Whether *stmt*'s head may yield control back to the event loop."""
    return bool(head_awaits(stmt))


@dataclass
class Block:
    """One basic block: a run of statements with a single entry point.

    ``loops`` names the enclosing loops as a tuple of loop-head block
    ids, outermost first — a loop's head block is a member of its own
    loop (its test/target binding re-executes every iteration), while
    the ``after`` block that control falls into on exit is not.  The
    perf analyses use this to decide whether a definition site lies
    inside or outside a given loop.
    """

    id: int
    stmts: List[ast.stmt] = field(default_factory=list)
    succs: List[int] = field(default_factory=list)
    loops: "tuple[int, ...]" = ()

    def add_succ(self, target: int) -> None:
        """Add an edge to *target*, keeping the successor list deduped."""
        if target not in self.succs:
            self.succs.append(target)


@dataclass
class CFG:
    """A built control-flow graph: blocks plus entry/exit designators."""

    blocks: List[Block]
    entry: int
    exit: int

    def block(self, block_id: int) -> Block:
        """The block with id *block_id*."""
        return self.blocks[block_id]

    def preds(self, block_id: int) -> List[int]:
        """Ids of all predecessors of *block_id*, in id order."""
        return [b.id for b in self.blocks if block_id in b.succs]

    def rpo(self) -> List[int]:
        """Reverse-postorder block ids from the entry (iterative DFS)."""
        seen = set()
        order: List[int] = []
        stack: List[tuple[int, int]] = [(self.entry, 0)]
        seen.add(self.entry)
        while stack:
            node, idx = stack[-1]
            succs = self.blocks[node].succs
            if idx < len(succs):
                stack[-1] = (node, idx + 1)
                nxt = succs[idx]
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append((nxt, 0))
            else:
                stack.pop()
                order.append(node)
        order.reverse()
        return order

    def describe(self) -> str:
        """Deterministic one-line-per-block rendering (golden-test form).

        ``b<id>[Stmt,Stmt] -> b2,b3`` per block; the head statement of a
        compound appears under its node-type name, the exit block is
        labelled ``exit``.  A statement whose head may yield control (an
        await point) renders with a ``~`` suffix: ``Assign~``.
        """
        lines = []
        for block in self.blocks:
            kinds = ",".join(
                type(s).__name__ + ("~" if is_yield_point(s) else "")
                for s in block.stmts
            ) or "-"
            succs = ",".join(f"b{i}" for i in block.succs) or "-"
            tag = " (exit)" if block.id == self.exit else ""
            lines.append(f"b{block.id}[{kinds}]{tag} -> {succs}")
        return "\n".join(lines)


#: Statement types whose head joins the current block while their
#: bodies are lowered into separate blocks.
_COMPOUND = (ast.If, ast.While, ast.For, ast.AsyncFor, ast.Try, ast.With, ast.AsyncWith)


class _Builder:
    """Stateful lowering of one statement list into a :class:`CFG`."""

    def __init__(self) -> None:
        self.blocks: List[Block] = []
        #: (head_id, after_id) per enclosing loop, innermost last.
        self.loops: List[tuple[int, int]] = []
        #: Handler-entry block ids per enclosing try, innermost last.
        self.handlers: List[List[int]] = []
        self.entry = self._new_block().id
        self.exit = self._new_block().id

    # ------------------------------------------------------------------
    def _new_block(self) -> Block:
        block = Block(
            id=len(self.blocks),
            loops=tuple(head for head, _ in self.loops),
        )
        self.blocks.append(block)
        return block

    def _raise_target(self) -> int:
        """Where an exception goes: innermost handler set, else exit."""
        if self.handlers and self.handlers[-1]:
            return self.handlers[-1][0]
        return self.exit

    # ------------------------------------------------------------------
    def lower(self, stmts: List[ast.stmt], current: Optional[int]) -> Optional[int]:
        """Lower *stmts* starting in block *current*.

        Returns the fall-through block id, or ``None`` when every path
        terminated (return/raise/break/continue).
        """
        for stmt in stmts:
            if current is None:
                return None  # unreachable tail; keep the CFG minimal
            current = self._lower_stmt(stmt, current)
        return current

    def _lower_stmt(self, stmt: ast.stmt, current: int) -> Optional[int]:
        if isinstance(stmt, ast.If):
            return self._lower_if(stmt, current)
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            return self._lower_loop(stmt, current)
        if isinstance(stmt, ast.Try):
            return self._lower_try(stmt, current)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            self.blocks[current].stmts.append(stmt)
            return self.lower(stmt.body, current)
        if isinstance(stmt, (ast.Return, ast.Raise)):
            self.blocks[current].stmts.append(stmt)
            target = self.exit if isinstance(stmt, ast.Return) else self._raise_target()
            self.blocks[current].add_succ(target)
            return None
        if isinstance(stmt, ast.Break):
            self.blocks[current].stmts.append(stmt)
            if self.loops:
                self.blocks[current].add_succ(self.loops[-1][1])
            return None
        if isinstance(stmt, ast.Continue):
            self.blocks[current].stmts.append(stmt)
            if self.loops:
                self.blocks[current].add_succ(self.loops[-1][0])
            return None
        self.blocks[current].stmts.append(stmt)
        return current

    # ------------------------------------------------------------------
    def _lower_if(self, stmt: ast.If, current: int) -> Optional[int]:
        self.blocks[current].stmts.append(stmt)  # head: evaluates test
        then_entry = self._new_block()
        self.blocks[current].add_succ(then_entry.id)
        then_exit = self.lower(stmt.body, then_entry.id)
        after = self._new_block()
        if stmt.orelse:
            else_entry = self._new_block()
            self.blocks[current].add_succ(else_entry.id)
            else_exit = self.lower(stmt.orelse, else_entry.id)
            if else_exit is not None:
                self.blocks[else_exit].add_succ(after.id)
        else:
            self.blocks[current].add_succ(after.id)
        if then_exit is not None:
            self.blocks[then_exit].add_succ(after.id)
        return after.id

    def _lower_loop(self, stmt: ast.stmt, current: int) -> int:
        head = self._new_block()
        head.stmts.append(stmt)  # head: evaluates test / binds target
        # The head re-executes every iteration, so it belongs to its own
        # loop; ``after`` is created before the push and stays outside.
        head.loops = head.loops + (head.id,)
        self.blocks[current].add_succ(head.id)
        after = self._new_block()
        self.loops.append((head.id, after.id))
        body_entry = self._new_block()
        head.add_succ(body_entry.id)
        body_exit = self.lower(stmt.body, body_entry.id)
        self.loops.pop()
        if body_exit is not None:
            self.blocks[body_exit].add_succ(head.id)  # back edge
        orelse = getattr(stmt, "orelse", [])
        if orelse:
            else_entry = self._new_block()
            head.add_succ(else_entry.id)
            else_exit = self.lower(orelse, else_entry.id)
            if else_exit is not None:
                self.blocks[else_exit].add_succ(after.id)
        else:
            head.add_succ(after.id)
        return after.id

    def _lower_try(self, stmt: ast.Try, current: int) -> Optional[int]:
        self.blocks[current].stmts.append(stmt)  # head marker
        handler_entries = [self._new_block() for _ in stmt.handlers]
        body_entry = self._new_block()
        self.blocks[current].add_succ(body_entry.id)
        first_body_block = body_entry.id
        self.handlers.append([b.id for b in handler_entries])
        body_exit = self.lower(stmt.body, body_entry.id)
        self.handlers.pop()
        # Any statement in the body may raise: every block lowered for
        # the body gets an edge to every handler entry.
        body_blocks = range(first_body_block, len(self.blocks))
        for block_id in body_blocks:
            if all(block_id != h.id for h in handler_entries):
                for h in handler_entries:
                    self.blocks[block_id].add_succ(h.id)
        if stmt.orelse and body_exit is not None:
            body_exit = self.lower(stmt.orelse, body_exit)

        exits: List[int] = []
        if body_exit is not None:
            exits.append(body_exit)
        for handler, entry in zip(stmt.handlers, handler_entries):
            handler_exit = self.lower(handler.body, entry.id)
            if handler_exit is not None:
                exits.append(handler_exit)
        if stmt.finalbody:
            final_entry = self._new_block()
            for ex in exits:
                self.blocks[ex].add_succ(final_entry.id)
            final_exit = self.lower(stmt.finalbody, final_entry.id)
            if final_exit is None:
                return None
            after = self._new_block()
            self.blocks[final_exit].add_succ(after.id)
            return after.id
        if not exits:
            return None
        after = self._new_block()
        for ex in exits:
            self.blocks[ex].add_succ(after.id)
        return after.id


def build_cfg(func: "ast.FunctionDef | ast.AsyncFunctionDef") -> CFG:
    """Build the control-flow graph of one function definition."""
    builder = _Builder()
    tail = builder.lower(list(func.body), builder.entry)
    if tail is not None:
        builder.blocks[tail].add_succ(builder.exit)
    return CFG(blocks=builder.blocks, entry=builder.entry, exit=builder.exit)
