"""Static view of the nn layers' ``@tensor_contract`` specs.

F1's transfer functions are the *declared* contracts on
``Dense``/``Embedding``/``LSTMCell``/``StackedLSTM``/``BatchedScorer``
and the model-zoo kernels (``CausalConv1d``/``TemporalBlock``/
``TCNBackbone``/``AttentionLayer``/``AttentionBackbone``):
what a layer method promises about its input/output shapes.  This module harvests
them once — via :func:`repro.nn.contracts.declared_contracts`, which
works under ``python -O`` too — together with each constructor's
parameter names, so a call site like ``Dense(4, 8, rng)`` can bind the
spec identifiers ``in_dim=4, out_dim=8`` positionally.

Harvesting imports :mod:`repro.nn`; when that import is unavailable in
an embedding environment the table is simply empty and F1 degrades to
checking only contracts declared inline in the linted source.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, Mapping, Optional, Tuple

__all__ = [
    "LayerSpec",
    "builtin_layer_specs",
    "parse_contract",
    "resolve_layer",
    "specs_by_short_name",
]


@dataclass(frozen=True)
class LayerSpec:
    """One layer class as the shape analysis sees it."""

    qualname: str  # e.g. "repro.nn.layers.Dense"
    name: str  # e.g. "Dense"
    init_params: Tuple[str, ...]  # ctor params after self, in order
    methods: Mapping[str, object]  # method -> (input spec, output spec)


def parse_contract(spec: str):
    """Parse a contract string into ``(input, output)`` TensorSpecs.

    Either side may itself be a *tuple* of TensorSpecs for multi-group
    contracts (batched stateful methods like ``LSTMCell.step_batch``).
    Returns ``None`` for a malformed spec instead of raising — a broken
    inline contract is the runtime layer's problem to report, not the
    linter's.
    """
    try:
        from ...nn.contracts import parse_spec

        return parse_spec(spec)
    except Exception:  # deshlint: allow[R4] malformed spec: skip, don't crash lint
        return None


@lru_cache(maxsize=1)
def builtin_layer_specs() -> Dict[str, LayerSpec]:
    """The known nn layer classes, keyed by qualified class name."""
    try:
        from ...nn.attention import AttentionBackbone, AttentionLayer
        from ...nn.batched import BatchedScorer
        from ...nn.contracts import declared_contracts
        from ...nn.layers import Dense, Embedding
        from ...nn.lstm import LSTMCell, StackedLSTM
        from ...nn.tcn import CausalConv1d, TCNBackbone, TemporalBlock
    except Exception:  # deshlint: allow[R4] optional table: lint must run without numpy
        return {}
    table: Dict[str, LayerSpec] = {}
    for cls in (
        Dense,
        Embedding,
        LSTMCell,
        StackedLSTM,
        BatchedScorer,
        CausalConv1d,
        TemporalBlock,
        TCNBackbone,
        AttentionLayer,
        AttentionBackbone,
    ):
        methods = {}
        for method, spec in declared_contracts(cls).items():
            parsed = parse_contract(spec)
            if parsed is not None:
                methods[method] = parsed
        params = tuple(
            name
            for name in inspect.signature(cls.__init__).parameters
            if name != "self"
        )
        qualname = f"{cls.__module__}.{cls.__name__}"
        table[qualname] = LayerSpec(
            qualname=qualname, name=cls.__name__, init_params=params, methods=methods
        )
    return table


def specs_by_short_name() -> Dict[str, LayerSpec]:
    """The builtin table re-keyed by bare class name (``Dense``)."""
    return {spec.name: spec for spec in builtin_layer_specs().values()}


def resolve_layer(dotted: Optional[str]) -> Optional[LayerSpec]:
    """The :class:`LayerSpec` a resolved dotted constructor name denotes.

    Matches either the exact qualified name or a dotted path whose last
    component is a known layer's class name (``repro.nn.Dense``,
    ``nn.layers.Dense`` and plain ``Dense`` all resolve to ``Dense``).
    """
    if not dotted:
        return None
    table = builtin_layer_specs()
    if dotted in table:
        return table[dotted]
    return specs_by_short_name().get(dotted.rpartition(".")[2])
