"""Abstract values for the dataflow analyses.

The lattice is deliberately shallow so every analysis terminates fast
and — more importantly — so F1 only ever reports *provable* facts:

* a :class:`Dim` is a concrete ``int``, a named symbol (``Sym``), or
  top (unknown).  Two dims are provably unequal only when both are
  concrete ints; distinct symbols are *incomparable*, never an error;
* a :class:`ShapeVal` is a tuple of dims with an optional unknown
  leading prefix plus a coarse dtype family and a provenance chain;
* a :class:`DimVal` is a scalar known to be usable as a dimension
  (``B, T, _ = x.shape`` binds these);
* an :class:`InstanceVal` is a constructed nn layer with the dims its
  constructor pinned (``Dense(4, 8, rng)`` binds ``in_dim=4``).

``UNKNOWN`` (absence of information) is modelled by *omitting* the
variable from the environment; :func:`join_envs` drops any variable the
branches disagree on beyond the per-field joins below.  Joins only move
up the lattice (value -> TOP dims -> dropped), so environments stabilize
in a small, bounded number of sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

__all__ = [
    "Dim",
    "DimVal",
    "InstanceVal",
    "ShapeVal",
    "TOP_DIM",
    "UNKNOWN",
    "join_dims",
    "join_envs",
    "join_values",
]


@dataclass(frozen=True)
class Dim:
    """One dimension: concrete int, named symbol, or unknown (top)."""

    kind: str  # "int" | "sym" | "top"
    value: object = None

    @staticmethod
    def of_int(n: int) -> "Dim":
        """A concrete dimension."""
        return Dim("int", int(n))

    @staticmethod
    def sym(name: str) -> "Dim":
        """A symbolic dimension, compared by name."""
        return Dim("sym", name)

    def render(self) -> str:
        """Human-readable form used in finding messages."""
        if self.kind == "int":
            return str(self.value)
        if self.kind == "sym":
            return str(self.value)
        return "?"

    def provably_differs(self, other: "Dim") -> bool:
        """True only when both dims are concrete ints and unequal."""
        return (
            self.kind == "int" and other.kind == "int" and self.value != other.value
        )


TOP_DIM = Dim("top")


def join_dims(a: Dim, b: Dim) -> Dim:
    """Least upper bound of two dims (equal -> kept, else top)."""
    return a if a == b else TOP_DIM


@dataclass(frozen=True)
class ShapeVal:
    """Abstract tensor: dims, optional unknown leading prefix, dtype.

    ``dtype`` is one of ``"float"``/``"int"``/``"bool"`` or ``None``
    for unknown.  ``chain`` records how the value was derived ("np.zeros
    at line 4 -> (3, 5):float"); it is provenance only and excluded from
    equality so fixpoint iteration converges.
    """

    dims: Tuple[Dim, ...]
    lead_unknown: bool = False
    dtype: Optional[str] = None
    chain: Tuple[str, ...] = field(default=(), compare=False)

    def render(self) -> str:
        """Shape text like ``(..., 3, ?):float``."""
        parts = ["..."] if self.lead_unknown else []
        parts += [d.render() for d in self.dims]
        suffix = f":{self.dtype}" if self.dtype else ""
        return f"({', '.join(parts)}){suffix}"

    def with_step(self, step: str) -> "ShapeVal":
        """Copy with *step* appended to the provenance chain (capped)."""
        chain = (self.chain + (step,))[-6:]
        return ShapeVal(self.dims, self.lead_unknown, self.dtype, chain)


@dataclass(frozen=True)
class DimVal:
    """A scalar variable known to carry a dimension value."""

    dim: Dim


@dataclass(frozen=True)
class InstanceVal:
    """A constructed nn layer and the dims its constructor bound."""

    layer: str  # registry key (qualified layer name)
    binds: Tuple[Tuple[str, Dim], ...]  # sorted (ctor param, dim) pairs

    def bound(self, name: str) -> Optional[Dim]:
        """The dim bound for constructor parameter *name*, if any."""
        for param, dim in self.binds:
            if param == name:
                return dim
        return None


#: Absence of information; environments simply omit unknown variables,
#: and expression evaluation returns this sentinel.
UNKNOWN = None


def join_values(a: object, b: object) -> object:
    """Least upper bound of two abstract values (``UNKNOWN`` absorbs)."""
    if a is UNKNOWN or b is UNKNOWN:
        return UNKNOWN
    if a == b:
        return a
    if isinstance(a, ShapeVal) and isinstance(b, ShapeVal):
        if a.lead_unknown != b.lead_unknown or len(a.dims) != len(b.dims):
            return UNKNOWN
        dtype = a.dtype if a.dtype == b.dtype else None
        dims = tuple(join_dims(x, y) for x, y in zip(a.dims, b.dims))
        return ShapeVal(dims, a.lead_unknown, dtype, a.chain)
    if isinstance(a, DimVal) and isinstance(b, DimVal):
        return DimVal(join_dims(a.dim, b.dim))
    return UNKNOWN


def join_envs(a: Dict[str, object], b: Dict[str, object]) -> Dict[str, object]:
    """Join two environments; variables the sides disagree on drop out."""
    out: Dict[str, object] = {}
    for name in a.keys() & b.keys():
        joined = join_values(a[name], b[name])
        if joined is not UNKNOWN:
            out[name] = joined
    return out
