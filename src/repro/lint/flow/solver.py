"""Generic worklist fixpoint solver over a :class:`~.cfg.CFG`.

The solver is parametric in the abstract domain: anything implementing
:class:`Domain` can be propagated to a fixpoint.  A forward analysis is
assumed (states flow along CFG edges from the entry).  Termination is
the domain's responsibility — its lattice must have finite height under
``join`` — but the solver also carries a hard pass budget as a backstop
so a buggy domain degrades into lost precision, never a hang: when the
budget is exhausted the current (still sound-for-reporting, since the
analyses only report *provable* facts) states are returned with
``converged=False``.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, Generic, TypeVar

from .cfg import CFG, Block

__all__ = ["Domain", "SolveResult", "solve"]

S = TypeVar("S")


class Domain(Generic[S]):
    """Abstract-domain protocol consumed by :func:`solve`.

    Subclasses supply the entry state, the join (least upper bound) of
    two states, and the block transfer function.  ``equals`` defaults
    to ``==`` which suits dict/tuple-shaped states.
    """

    def initial(self) -> S:
        """State holding at the function entry."""
        raise NotImplementedError

    def join(self, a: S, b: S) -> S:
        """Least upper bound of two states."""
        raise NotImplementedError

    def transfer(self, block: Block, state: S) -> S:
        """State after executing *block* from *state*."""
        raise NotImplementedError

    def equals(self, a: S, b: S) -> bool:
        """Fixpoint test between successive states at one block."""
        return a == b


@dataclass
class SolveResult(Generic[S]):
    """Fixpoint states plus solver accounting."""

    #: Block id -> state holding at block entry.
    in_states: Dict[int, S]
    #: Block id -> state holding at block exit.
    out_states: Dict[int, S]
    #: Total block transfers executed before reaching the fixpoint.
    passes: int
    #: False when the pass budget ran out before stabilizing.
    converged: bool


def solve(cfg: CFG, domain: Domain[S], *, max_passes_per_block: int = 64) -> SolveResult[S]:
    """Run *domain* over *cfg* to a forward fixpoint.

    Blocks are seeded in reverse postorder (loops converge in few
    sweeps); the worklist then re-queues only successors of blocks
    whose out-state changed.
    """
    order = cfg.rpo()
    position = {block_id: i for i, block_id in enumerate(order)}
    preds: Dict[int, list] = {block_id: [] for block_id in order}
    for block_id in order:
        for succ in cfg.block(block_id).succs:
            if succ in preds:
                preds[succ].append(block_id)

    in_states: Dict[int, S] = {}
    out_states: Dict[int, S] = {}
    budget = max_passes_per_block * max(1, len(order))
    passes = 0
    queue = deque(order)
    queued = set(order)
    while queue:
        if passes >= budget:
            return SolveResult(in_states, out_states, passes, converged=False)
        block_id = queue.popleft()
        queued.discard(block_id)
        state = domain.initial() if block_id == cfg.entry else None
        for pred in preds[block_id]:
            if pred not in out_states:
                continue
            state = (
                out_states[pred]
                if state is None
                else domain.join(state, out_states[pred])
            )
        if state is None:
            continue  # no predecessor solved yet; a later pass re-queues
        in_states[block_id] = state
        out = domain.transfer(cfg.block(block_id), state)
        passes += 1
        if block_id in out_states and domain.equals(out_states[block_id], out):
            continue
        out_states[block_id] = out
        for succ in cfg.block(block_id).succs:
            if succ in position and succ not in queued:
                queue.append(succ)
                queued.add(succ)
    return SolveResult(in_states, out_states, passes, converged=True)
