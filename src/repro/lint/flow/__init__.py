"""deshflow — the deshlint dataflow engine.

PR 3's rules are syntactic: they pattern-match single AST nodes (plus
R2's call-graph reachability).  This package adds the *semantic* half —
a from-scratch intraprocedural dataflow framework and three analyses
built on it, registered as deshlint rules F1-F3:

* :mod:`cfg` — per-function control-flow graph builder over the Python
  AST (if/while/for with else clauses, try/except/finally, with,
  break/continue/return/raise);
* :mod:`solver` — a generic worklist fixpoint solver over any CFG and
  any :class:`~repro.lint.flow.solver.Domain`;
* :mod:`domain` — the abstract-value lattice shared by the analyses
  (symbolic dims, tensor shapes, layer instances);
* :mod:`specs` — static view of the ``@tensor_contract`` specs the nn
  layers declare (harvested from :mod:`repro.nn.contracts`);
* :mod:`shapeflow` — **F1**: abstract interpretation of tensor shapes
  through layer call sites, reporting statically-provable mismatches;
* :mod:`stageflow` — **F2**: producer/consumer consistency of stage
  artifacts across the pipeline DAG;
* :mod:`capture` — **F3**: mutable shared state captured by callables
  shipped to ``ordered_parallel_map``.

The **deshrace** trio makes the same machinery async-aware (the CFG
marks every await point as a yield of control; see
:func:`~repro.lint.flow.cfg.head_awaits`) and proves concurrency
properties of the serving layer:

* :mod:`atomicity` — **F4**: check-then-act / read-modify-write
  sequences on shared ``self.*`` state that span an await point
  without a common ``asyncio.Lock`` held across the window;
* :mod:`blocking` — **F5**: call-graph reachability from every
  ``async def`` to blocking calls (``time.sleep``, synchronous
  file/socket I/O, heavy NumPy fit entry points);
* :mod:`orphan` — **F6**: orphaned coroutines — unawaited coroutine
  calls and dropped ``create_task``/``ensure_future`` handles.

All six plug into the ordinary rule engine: suppressions
(``# deshlint: allow[F1] reason``), the baseline, ``--rules`` subsets
and the CI gate apply unchanged.
"""

from .cfg import CFG, Block, build_cfg, head_awaits, is_yield_point
from .domain import (
    TOP_DIM,
    UNKNOWN,
    Dim,
    DimVal,
    InstanceVal,
    ShapeVal,
    join_envs,
    join_values,
)
from .solver import Domain, SolveResult, solve

__all__ = [
    "CFG",
    "Block",
    "build_cfg",
    "Dim",
    "DimVal",
    "Domain",
    "InstanceVal",
    "ShapeVal",
    "SolveResult",
    "TOP_DIM",
    "UNKNOWN",
    "join_envs",
    "join_values",
    "solve",
]
