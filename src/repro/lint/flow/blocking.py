"""F5 — blocking calls reachable from coroutines.

One ``time.sleep`` anywhere under an ``async def`` stalls the *whole*
event loop: every shard worker, the HTTP server, the supervisor's
restart timers — all of them stop until the sleep returns.  The same
goes for synchronous socket/file I/O and for heavy NumPy training
entry points.  The damage is invisible in unit tests (one coroutine,
no contention) and shows up in production as missed alert deadlines.

The rule reuses R2's over-approximate project call graph
(:class:`~repro.lint.rules.purity._Project`) and walks it from every
``async def`` in the project, with two precision amendments:

* unresolved ``obj.meth(...)`` calls are followed only when exactly
  one project method bears that name — R2's every-method-named-``meth``
  wildcard is fine for a handful of ``Stage.run`` roots but explodes
  from dozens of coroutine roots into the whole repo;
* the walk stops at *sync boundaries*: functions the serving layer
  deliberately calls synchronously because their cost is budgeted and
  bounded (the monitor's batch feed, the phase-3 partial scorer, the
  checkpoint save/restore helpers).  The boundary list is the
  allowlist the ISSUE calls for; anything newly reachable behind it
  needs its own review, not silence.

Findings anchor at the blocking call site and carry the full example
call chain from the coroutine root as related locations, one hop per
function, like R2 renders its purity chains.
"""

from __future__ import annotations

import ast
from collections import deque
from typing import Dict, List, Sequence, Set, Tuple

from ..findings import Finding
from ..names import resolve_dotted
from ..rules import ModuleInfo, Rule, register
from ..rules.purity import _Func, _Project

__all__ = ["BlockingCallRule"]

#: Dotted call targets that block the event loop, with the reason.
_BLOCKING_DOTTED = {
    "time.sleep": "sleeps the whole event loop",
    "os.system": "blocks on a subprocess",
    "subprocess.run": "blocks on a subprocess",
    "subprocess.call": "blocks on a subprocess",
    "subprocess.check_call": "blocks on a subprocess",
    "subprocess.check_output": "blocks on a subprocess",
    "socket.create_connection": "performs blocking network I/O",
    "urllib.request.urlopen": "performs blocking network I/O",
}

#: Bare built-in calls that hit the filesystem / terminal synchronously.
_BLOCKING_BUILTINS = {
    "open": "opens a file synchronously",
    "input": "blocks on terminal input",
}

#: Method names that are blocking I/O on their usual receivers
#: (pathlib.Path, socket.socket).  Only flagged when the call does not
#: resolve to a project function of the same name.
_BLOCKING_METHODS = {
    "read_text": "reads a file synchronously",
    "write_text": "writes a file synchronously",
    "read_bytes": "reads a file synchronously",
    "write_bytes": "writes a file synchronously",
    "recv": "performs blocking socket I/O",
    "sendall": "performs blocking socket I/O",
    "makefile": "performs blocking socket I/O",
}

#: Project functions that are heavy compute entry points: reaching one
#: from a coroutine means minutes of NumPy under the event loop.
_HEAVY_NAMES = {"fit", "fit_with_validation", "train"}

#: Deliberately synchronous boundaries: the serving layer calls these
#: inline because their cost is budgeted (micro-batched scoring) or
#: they run off-loop (checkpoint I/O via asyncio.to_thread).  The walk
#: does not descend into them.
_SYNC_BOUNDARIES = {
    "StreamingMonitor.feed_batch",
    "StreamingMonitor.feed_line_batch",
    "Phase3Predictor.score_partial",
    "Phase3Predictor.score_partial_batch",
    "CheckpointManager.save",
    "CheckpointManager.load_latest",
    "save_service_checkpoint",
    "restore_service_state",
}


def _short(qualname: str) -> str:
    """``module:Class.method`` -> ``Class.method``."""
    return qualname.split(":", 1)[1]


def _is_boundary(qualname: str) -> bool:
    return _short(qualname) in _SYNC_BOUNDARIES


def _awaited_calls(node: ast.AST) -> Set[int]:
    """ids of Call nodes that are the direct operand of an ``await``."""
    out: Set[int] = set()
    for child in ast.walk(node):
        if isinstance(child, ast.Await) and isinstance(child.value, ast.Call):
            out.add(id(child.value))
    return out


@register
class BlockingCallRule(Rule):
    """No path from an async def may reach a blocking call."""

    id = "F5"
    category = "dataflow"
    summary = (
        "no blocking call (time.sleep, sync file/socket I/O, heavy "
        "NumPy fit) reachable from any async def — one blocked frame "
        "stalls every coroutine on the event loop"
    )

    def check_project(self, modules: Sequence[ModuleInfo]) -> List[Finding]:
        """Walk the call graph from every coroutine in the project."""
        project = _Project(modules)
        roots = sorted(
            qn
            for qn, func in project.funcs.items()
            if isinstance(func.node, ast.AsyncFunctionDef)
        )
        if not roots:
            return []
        chains = self._reachable(project, roots)
        findings: List[Finding] = []
        reported: Set[Tuple[str, int, str]] = set()
        for qualname in sorted(chains):
            if _is_boundary(qualname):
                # A sync boundary is reviewed as a unit: neither its
                # body nor anything beyond it is scanned.
                continue
            func = project.funcs[qualname]
            self._scan_body(project, func, chains[qualname], reported, findings)
            self._check_heavy_edges(
                project, func, chains[qualname], reported, findings
            )
        findings.sort(key=lambda f: (f.path, f.line, f.col, f.message))
        return findings

    # ------------------------------------------------------------------
    def _reachable(
        self, project: _Project, roots: List[str]
    ) -> Dict[str, List[str]]:
        """BFS closure with example chains, amended for precision.

        Unlike R2's :meth:`_Project.reachable_from`, unresolved method
        calls only link when the name maps to exactly one project
        function, and sync-boundary functions terminate the walk.
        """
        chains: Dict[str, List[str]] = {}
        queue: deque = deque()
        for root in roots:
            chains[root] = [root]
            queue.append(root)
        while queue:
            current = queue.popleft()
            if _is_boundary(current):
                continue
            func = project.funcs[current]
            targets = set(func.calls)
            for meth in func.unresolved_methods:
                candidates = project.by_method_name.get(meth, set())
                if len(candidates) == 1:
                    targets.update(candidates)
            for target in sorted(targets):
                if target not in chains and target in project.funcs:
                    chains[target] = chains[current] + [target]
                    queue.append(target)
        return chains

    # ------------------------------------------------------------------
    def _scan_body(
        self,
        project: _Project,
        func: _Func,
        chain: List[str],
        reported: Set[Tuple[str, int, str]],
        findings: List[Finding],
    ) -> None:
        """Flag blocking Call nodes inside one reachable function."""
        awaited = _awaited_calls(func.node)
        for node in ast.walk(func.node):
            if not isinstance(node, ast.Call) or id(node) in awaited:
                continue
            label, why = self._classify(project, func, node)
            if label is None:
                continue
            site = (func.module.path, getattr(node, "lineno", 0), label)
            if site in reported:
                continue
            reported.add(site)
            findings.append(
                self._finding(project, func, node, chain, label, why)
            )

    def _classify(
        self, project: _Project, func: _Func, node: ast.Call
    ) -> Tuple["str | None", str]:
        """(label, reason) when *node* is a blocking call, else (None, '')."""
        target = node.func
        if isinstance(target, ast.Name):
            if target.id in _BLOCKING_BUILTINS:
                return target.id, _BLOCKING_BUILTINS[target.id]
            dotted = resolve_dotted(target, func.imap)
            if dotted in _BLOCKING_DOTTED:
                return dotted, _BLOCKING_DOTTED[dotted]
            return None, ""
        if not isinstance(target, ast.Attribute):
            return None, ""
        dotted = resolve_dotted(target, func.imap)
        if dotted in _BLOCKING_DOTTED:
            return dotted, _BLOCKING_DOTTED[dotted]
        if target.attr in _BLOCKING_METHODS:
            # A project method of the same name is a call-graph edge,
            # not pathlib/socket I/O — the walk follows it instead.
            if not project.by_method_name.get(target.attr):
                return f".{target.attr}()", _BLOCKING_METHODS[target.attr]
        return None, ""

    # ------------------------------------------------------------------
    def _check_heavy_edges(
        self,
        project: _Project,
        func: _Func,
        chain: List[str],
        reported: Set[Tuple[str, int, str]],
        findings: List[Finding],
    ) -> None:
        """Flag call sites in *func* that resolve to heavy entry points."""
        if _is_boundary(func.qualname):
            return
        heavy = {
            qn
            for qn in func.calls
            if qn in project.funcs and project.funcs[qn].name in _HEAVY_NAMES
        }
        for meth in func.unresolved_methods & _HEAVY_NAMES:
            candidates = project.by_method_name.get(meth, set())
            if len(candidates) == 1:
                heavy.update(candidates)
        if not heavy:
            return
        for node in ast.walk(func.node):
            if not isinstance(node, ast.Call):
                continue
            name = (
                node.func.attr
                if isinstance(node.func, ast.Attribute)
                else node.func.id if isinstance(node.func, ast.Name) else ""
            )
            matches = sorted(q for q in heavy if project.funcs[q].name == name)
            if not matches:
                continue
            label = _short(matches[0])
            site = (func.module.path, getattr(node, "lineno", 0), label)
            if site in reported:
                continue
            reported.add(site)
            findings.append(
                self._finding(
                    project,
                    func,
                    node,
                    chain + [matches[0]],
                    label,
                    "is a heavy NumPy training entry point",
                )
            )

    # ------------------------------------------------------------------
    def _finding(
        self,
        project: _Project,
        func: _Func,
        node: ast.AST,
        chain: List[str],
        label: str,
        why: str,
    ) -> Finding:
        rendered = " -> ".join(_short(q) for q in chain)
        related = []
        for i, qn in enumerate(chain):
            hop = project.funcs.get(qn)
            if hop is None:
                continue
            related.append(
                hop.module.site(
                    hop.node, f"call chain hop {i}: {_short(qn)} defined here"
                )
            )
        return func.module.finding(
            node,
            self.id,
            f"{label} {why}; reachable from async def {_short(chain[0])} "
            f"via {rendered} — move it behind asyncio.to_thread or an "
            "executor, or add the call to the reviewed sync-boundary "
            "allowlist",
            related=tuple(related),
        )
