"""F3 — parallel capture: shared mutable state in parallel workers.

``ordered_parallel_map`` promises order-preserving results, but it says
nothing about *when* workers run relative to each other — in thread
mode they genuinely interleave.  A worker that mutates state captured
from an enclosing scope (appending to a shared list, writing into a
shared dict/ndarray, advancing a shared RNG ``Generator``) therefore
races: results depend on scheduling, which silently breaks the repo's
determinism guarantees even when no crash occurs.

For every call site of ``ordered_parallel_map`` this rule resolves the
submitted callable — a lambda, a locally/module-defined ``def``, or a
``functools.partial`` over one — and flags, inside the worker body:

* in-place mutator calls (``.append``/``.update``/...) on captured
  names;
* subscript/attribute stores rooted at captured names (``buf[i] = x``);
* ``nonlocal``/``global`` rebinds;
* ``np.add.at(shared, ...)`` scatter-adds;
* method calls on captured RNG generators (each draw advances shared
  state, so results depend on worker interleaving).

Bound methods and other attribute callables are skipped — the receiver
is explicit in the call and reviewed there; the common footgun this
rule targets is the innocuous-looking closure.  Workers should return
values and let ``ordered_parallel_map`` reassemble them in order.
"""

from __future__ import annotations

import ast
from typing import List, Optional, Sequence, Set, Tuple

from ..findings import Finding
from ..names import ImportMap, build_import_map, resolve_dotted
from ..rules import ModuleInfo, Rule, register
from ..rules.purity import _MUTATORS

__all__ = ["ParallelCaptureRule"]

#: Receiver names never treated as captured shared state.
_BENIGN_ROOTS = {"self"}


def _root_name(node: ast.AST) -> Optional[str]:
    """The base ``Name`` of an attribute/subscript chain, if any."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    return node.id if isinstance(node, ast.Name) else None


def _bound_names(target: ast.AST, into: Set[str]) -> None:
    """Names bound by an assignment/for/with target."""
    if isinstance(target, ast.Name):
        into.add(target.id)
    elif isinstance(target, (ast.Tuple, ast.List)):
        for elt in target.elts:
            _bound_names(elt, into)
    elif isinstance(target, ast.Starred):
        _bound_names(target.value, into)


def _worker_locals(fn: ast.AST) -> Tuple[Set[str], Set[str]]:
    """(local names, nonlocal/global declarations) of a worker callable.

    Over-approximate: names bound anywhere inside the worker — including
    nested functions — count as local, so a shadowed capture is never
    flagged (missed mutations are acceptable; false alarms are not).
    """
    local: Set[str] = set()
    declared: Set[str] = set()
    args = getattr(fn, "args", None)
    if args is not None:
        for group in (args.posonlyargs, args.args, args.kwonlyargs):
            local.update(a.arg for a in group)
        for special in (args.vararg, args.kwarg):
            if special is not None:
                local.add(special.arg)
    for node in ast.walk(fn):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                _bound_names(target, local)
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            _bound_names(node.target, local)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            _bound_names(node.target, local)
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if item.optional_vars is not None:
                    _bound_names(item.optional_vars, local)
        elif isinstance(node, ast.comprehension):
            _bound_names(node.target, local)
        elif isinstance(node, ast.ExceptHandler) and node.name:
            local.add(node.name)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            if node is not fn:
                local.add(node.name)
        elif isinstance(node, (ast.Nonlocal, ast.Global)):
            declared.update(node.names)
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                local.add(alias.asname or alias.name.split(".")[0])
        elif isinstance(node, ast.NamedExpr):
            _bound_names(node.target, local)
    return local - declared, declared


def _rng_names(tree: ast.AST, imap: ImportMap) -> Set[str]:
    """Names assigned from ``default_rng(...)`` or annotated Generator."""
    out: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
            dotted = resolve_dotted(node.value.func, imap) or ""
            if dotted.rpartition(".")[2] == "default_rng":
                for target in node.targets:
                    _bound_names(target, out)
        elif isinstance(node, ast.AnnAssign):
            annotation = ast.unparse(node.annotation)
            if annotation.rpartition(".")[2] == "Generator":
                _bound_names(node.target, out)
    return out


class _Scope:
    """One lexical function scope while walking the module."""

    def __init__(self, node: ast.AST) -> None:
        self.node = node


def _find_worker(
    expr: ast.AST, scopes: List[_Scope], imap: ImportMap
) -> Optional[ast.AST]:
    """Resolve the callable submitted to ``ordered_parallel_map``.

    Returns the defining ``FunctionDef``/``Lambda`` node, or ``None``
    for callables this rule does not analyze (bound methods, imports).
    """
    if isinstance(expr, ast.Lambda):
        return expr
    if isinstance(expr, ast.Call):
        dotted = resolve_dotted(expr.func, imap) or ""
        if dotted.rpartition(".")[2] == "partial" and expr.args:
            return _find_worker(expr.args[0], scopes, imap)
        return None
    if not isinstance(expr, ast.Name):
        return None
    for scope in reversed(scopes):
        body = getattr(scope.node, "body", [])
        for stmt in body if isinstance(body, list) else []:
            if (
                isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
                and stmt.name == expr.id
            ):
                return stmt
            if isinstance(stmt, ast.Assign) and isinstance(stmt.value, ast.Lambda):
                names: Set[str] = set()
                for target in stmt.targets:
                    _bound_names(target, names)
                if expr.id in names:
                    return stmt.value
    return None


@register
class ParallelCaptureRule(Rule):
    """Workers submitted to ordered_parallel_map must not mutate captured state."""

    id = "F3"
    category = "dataflow"
    summary = (
        "parallel capture safety: callables submitted to "
        "ordered_parallel_map must not mutate captured shared state "
        "(lists/dicts/ndarrays/RNG generators) — workers race"
    )

    def check_module(self, module: ModuleInfo) -> Sequence[Finding]:
        """Find every submission site and analyze its worker closure."""
        imap = build_import_map(module.tree, module.module_path)
        rng = _rng_names(module.tree, imap)
        findings: List[Finding] = []
        self._walk(module, module.tree, [_Scope(module.tree)], imap, rng, findings)
        return findings

    def _walk(
        self,
        module: ModuleInfo,
        node: ast.AST,
        scopes: List[_Scope],
        imap: ImportMap,
        rng: Set[str],
        findings: List[Finding],
    ) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.Call):
                dotted = resolve_dotted(child.func, imap) or ""
                if dotted.rpartition(".")[2] == "ordered_parallel_map":
                    self._check_site(module, child, scopes, imap, rng, findings)
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                self._walk(
                    module, child, scopes + [_Scope(child)], imap, rng, findings
                )
            else:
                self._walk(module, child, scopes, imap, rng, findings)

    def _check_site(
        self,
        module: ModuleInfo,
        call: ast.Call,
        scopes: List[_Scope],
        imap: ImportMap,
        rng: Set[str],
        findings: List[Finding],
    ) -> None:
        worker_expr = call.args[0] if call.args else None
        if worker_expr is None:
            worker_expr = next(
                (kw.value for kw in call.keywords if kw.arg == "fn"), None
            )
        if worker_expr is None:
            return
        worker = _find_worker(worker_expr, scopes, imap)
        if worker is None:
            return
        local, declared = _worker_locals(worker)
        reported: Set[Tuple[int, int, str]] = set()

        def flag(node: ast.AST, root: str, what: str) -> None:
            key = (getattr(node, "lineno", 0), getattr(node, "col_offset", 0), root)
            if key in reported:
                return
            reported.add(key)
            findings.append(
                module.finding(
                    node,
                    self.id,
                    f"worker submitted to ordered_parallel_map {what} "
                    f"captured {root!r}; parallel workers race on shared "
                    "state — return a value and let the pool reassemble "
                    "results in order",
                )
            )

        def is_captured(name: Optional[str]) -> bool:
            return (
                name is not None
                and name not in local
                and name not in _BENIGN_ROOTS
            )

        body = worker.body if isinstance(worker.body, list) else [worker.body]
        for stmt in body:
            for node in ast.walk(stmt):
                if isinstance(node, ast.Call) and isinstance(
                    node.func, ast.Attribute
                ):
                    root = _root_name(node.func.value)
                    dotted = resolve_dotted(node.func, imap) or ""
                    if dotted == "numpy.add.at" and node.args:
                        target = _root_name(node.args[0])
                        if is_captured(target):
                            flag(node, target, "scatter-writes into")
                            continue
                    if node.func.attr in _MUTATORS and is_captured(root):
                        flag(node, root, f"calls .{node.func.attr}() on")
                    elif is_captured(root) and root in rng:
                        flag(node, root, "advances the RNG state of")
                elif isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                    targets = (
                        node.targets
                        if isinstance(node, ast.Assign)
                        else [node.target]
                    )
                    for target in targets:
                        if isinstance(target, (ast.Subscript, ast.Attribute)):
                            root = _root_name(target)
                            if is_captured(root):
                                flag(node, root, "assigns into")
                        elif isinstance(target, ast.Name) and target.id in declared:
                            flag(node, target.id, "rebinds nonlocal/global")
