"""F6 — orphaned coroutines: created but never awaited or held.

Calling an ``async def`` without ``await`` does not run it — it builds
a coroutine object, which Python silently garbage-collects (a
``RuntimeWarning`` at best, in production: nothing happened).  Dropping
the handle returned by ``asyncio.create_task``/``ensure_future`` is the
subtler cousin: the task *does* run, but nothing observes its result,
so an exception inside it vanishes — and CPython only holds a weak
reference to running tasks, so the dropped task can be collected
mid-flight.

The rule flags expression statements whose value is a bare call:

* ``asyncio.create_task(...)`` / ``ensure_future(...)`` with the
  returned handle discarded — bind it and await/cancel it on shutdown
  (the ``Supervisor`` pattern);
* a call to a known coroutine function — an ``async def`` defined in
  the same module (bare name or ``self.`` method of the enclosing
  class) or an ``asyncio`` coroutine API (``sleep``, ``wait_for``,
  ``gather``, ``wait``, ``to_thread``, ...) — with no ``await``.

Calls nested inside other expressions are *consumed* by construction
(``await gather(self._run(0), self._run(1))``, ``t = create_task(c)``)
and never flagged; the analysis is deliberately syntactic about that
boundary to stay zero-false-positive.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Sequence, Set

from ..findings import Finding
from ..names import build_import_map, resolve_dotted
from ..rules import ModuleInfo, Rule, register

__all__ = ["OrphanCoroutineRule"]

#: asyncio module-level coroutine functions (calling them makes a
#: coroutine object; only await runs it).
_ASYNCIO_COROUTINES = {
    "sleep", "wait_for", "gather", "wait", "to_thread",
    "open_connection", "start_server", "wait_closed",
}

#: Call names that return a task handle which must not be dropped.
_TASK_FACTORIES = {"create_task", "ensure_future"}


def _call_name(node: ast.Call) -> Optional[str]:
    """Trailing name of the called expression, if any."""
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


@register
class OrphanCoroutineRule(Rule):
    """Coroutines must be awaited; task handles must be held."""

    id = "F6"
    category = "dataflow"
    summary = (
        "orphaned coroutines: a coroutine call without await never "
        "runs; a dropped create_task handle loses exceptions and can "
        "be garbage-collected mid-flight"
    )

    def check_module(self, module: ModuleInfo) -> Sequence[Finding]:
        """Scan every bare expression statement in the module."""
        imap = build_import_map(module.tree, module.module_path)
        async_names: Set[str] = {
            node.name
            for node in ast.walk(module.tree)
            if isinstance(node, ast.AsyncFunctionDef)
        }
        class_async: Dict[str, Set[str]] = {}
        for cls in module.tree.body:
            if isinstance(cls, ast.ClassDef):
                class_async[cls.name] = {
                    item.name
                    for item in cls.body
                    if isinstance(item, ast.AsyncFunctionDef)
                }
        findings: List[Finding] = []
        self._visit(
            module, module.tree, None, imap, async_names, class_async, findings
        )
        findings.sort(key=lambda f: (f.line, f.col, f.message))
        return findings

    def _visit(
        self,
        module: ModuleInfo,
        node: ast.AST,
        cls: Optional[str],
        imap,
        async_names: Set[str],
        class_async: Dict[str, Set[str]],
        findings: List[Finding],
    ) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.Expr) and isinstance(child.value, ast.Call):
                self._check_expr(
                    module, child.value, cls, imap, async_names, class_async,
                    findings,
                )
            inner_cls = child.name if isinstance(child, ast.ClassDef) else cls
            self._visit(
                module, child, inner_cls, imap, async_names, class_async,
                findings,
            )

    def _check_expr(
        self,
        module: ModuleInfo,
        call: ast.Call,
        cls: Optional[str],
        imap,
        async_names: Set[str],
        class_async: Dict[str, Set[str]],
        findings: List[Finding],
    ) -> None:
        name = _call_name(call)
        if name is None:
            return
        if name in _TASK_FACTORIES:
            findings.append(
                module.finding(
                    call,
                    self.id,
                    f"the task handle returned by {name}() is dropped; an "
                    "exception inside the task is lost and the running "
                    "task can be garbage-collected — bind the handle, "
                    "track it (Supervisor-style), and await or cancel it "
                    "on shutdown",
                )
            )
            return
        if self._is_coroutine_call(call, name, cls, imap, async_names, class_async):
            findings.append(
                module.finding(
                    call,
                    self.id,
                    f"coroutine {name}() is never awaited — the call only "
                    "builds a coroutine object, the body never runs; "
                    "await it, or wrap it in asyncio.create_task and "
                    "keep the handle",
                )
            )

    def _is_coroutine_call(
        self,
        call: ast.Call,
        name: str,
        cls: Optional[str],
        imap,
        async_names: Set[str],
        class_async: Dict[str, Set[str]],
    ) -> bool:
        func = call.func
        if isinstance(func, ast.Name):
            return name in async_names
        if isinstance(func, ast.Attribute):
            if (
                isinstance(func.value, ast.Name)
                and func.value.id == "self"
                and cls is not None
            ):
                return name in class_async.get(cls, set())
            dotted = resolve_dotted(func, imap) or ""
            mod, _, attr = dotted.rpartition(".")
            return mod == "asyncio" and attr in _ASYNCIO_COROUTINES
        return False
