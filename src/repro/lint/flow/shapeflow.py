"""F1 — shape flow: abstract interpretation of tensor shapes.

For every function in a module, the analysis builds a CFG, runs the
shape domain to a fixpoint with the worklist solver, and then replays
each block's statements against its entry state to *report*: at every
call of a contracted layer method (``Dense.forward`` and friends, per
the declared ``@tensor_contract`` specs) the inferred abstract shape of
the argument is checked against the input spec, and the call's result
takes the output spec's shape.  Contracted methods additionally seed
their own parameter from the input spec and check ``return`` values
against the output spec.

Shapes originate from NumPy constructors (``np.zeros((3, 5))``),
``reshape``, shape-tuple unpacking (``B, T, _ = x.shape``), slicing,
and contract outputs; layer constructors bind spec identifiers
(``Dense(4, 8, rng)`` pins ``in_dim=4``).  Everything else evaluates to
unknown.  A finding is emitted **only for provable violations** — two
concrete ints that differ, a rank that cannot match, a dtype family
conflict — so symbolic dims (``embed_dim`` vs ``hidden_size``) are
propagated for the provenance chain but never guessed about.  The
message carries the inferred shape chain so the mismatch is auditable
from the report alone.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Sequence, Tuple

from ..findings import Finding
from ..names import ImportMap, build_import_map, resolve_dotted
from ..rules import ModuleInfo, Rule, register
from .cfg import Block, build_cfg
from .domain import (
    TOP_DIM,
    UNKNOWN,
    Dim,
    DimVal,
    InstanceVal,
    ShapeVal,
    join_envs,
)
from .solver import Domain, solve
from .specs import LayerSpec, parse_contract, resolve_layer, specs_by_short_name

__all__ = ["ShapeFlowRule"]

#: numpy constructors whose shape argument we understand.
_NP_SHAPED = {"zeros", "ones", "empty", "full"}
#: numpy ``x``-copying constructors (shape/dtype follow the argument).
_NP_LIKE = {"zeros_like", "ones_like", "empty_like", "full_like"}
_NP_PASSTHROUGH = {"asarray", "ascontiguousarray", "array"}

#: dtype spellings -> coarse family used by the contracts.
_DTYPE_FAMILIES = {
    "float": "float", "float16": "float", "float32": "float",
    "float64": "float", "double": "float",
    "int": "int", "int8": "int", "int16": "int", "int32": "int",
    "int64": "int", "intp": "int", "uint8": "int", "uint16": "int",
    "uint32": "int", "uint64": "int",
    "bool": "bool", "bool_": "bool",
}

Env = Dict[str, object]


def _dtype_family(node: Optional[ast.AST]) -> Optional[str]:
    """Coarse dtype family of a ``dtype=`` argument, if recognizable."""
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return _DTYPE_FAMILIES.get(node.value)
    if isinstance(node, ast.Name):
        return _DTYPE_FAMILIES.get(node.id)
    if isinstance(node, ast.Attribute):
        return _DTYPE_FAMILIES.get(node.attr)
    return None


def _spec_dtype(spec) -> Optional[str]:
    """Family name of a TensorSpec's dtype class (None for any)."""
    if spec is None or spec.dtype is None:
        return None
    name = spec.dtype.__name__  # np.floating / np.integer / np.bool_
    return {"floating": "float", "integer": "int", "bool_": "bool"}.get(name)


class _ClassContext:
    """What the analysis knows about the class a method lives in."""

    def __init__(self) -> None:
        #: attribute name -> InstanceVal for ``self.x = Dense(...)``.
        self.attrs: Dict[str, InstanceVal] = {}
        #: the class is itself a known layer (methods carry contracts).
        self.own_spec: Optional[LayerSpec] = None
        self.name: str = ""


class _Interp:
    """Statement/expression evaluator shared by transfer and reporting."""

    def __init__(
        self,
        module: ModuleInfo,
        imap: ImportMap,
        cls: Optional[_ClassContext],
        func: ast.AST,
        findings: Optional[List[Finding]] = None,
        rule_id: str = "F1",
    ) -> None:
        self.module = module
        self.imap = imap
        self.cls = cls
        self.func = func
        self.findings = findings
        self.rule_id = rule_id
        self.own_contract = _own_contract(func, imap, cls)

    # -- statements ----------------------------------------------------
    def exec_stmt(self, stmt: ast.stmt, env: Env) -> None:
        """Apply one statement (compound statements: head only)."""
        if isinstance(stmt, ast.Assign):
            value = self.eval(stmt.value, env)
            for target in stmt.targets:
                self._bind_target(target, stmt.value, value, env)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                value = self.eval(stmt.value, env)
                self._bind_target(stmt.target, stmt.value, value, env)
        elif isinstance(stmt, ast.AugAssign):
            self.eval(stmt.value, env)
            if isinstance(stmt.target, ast.Name):
                env.pop(stmt.target.id, None)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self.eval(stmt.iter, env)
            self._drop_target(stmt.target, env)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self.eval(item.context_expr, env)
                if item.optional_vars is not None:
                    self._drop_target(item.optional_vars, env)
        elif isinstance(stmt, (ast.If, ast.While)):
            self.eval(stmt.test, env)
        elif isinstance(stmt, ast.Try):
            pass  # bodies live in their own blocks
        elif isinstance(stmt, ast.Return):
            value = self.eval(stmt.value, env) if stmt.value else UNKNOWN
            self._check_return(stmt, value)
        elif isinstance(stmt, ast.Expr):
            self.eval(stmt.value, env)
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    env.pop(target.id, None)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            env.pop(stmt.name, None)
        elif isinstance(stmt, (ast.Import, ast.ImportFrom)):
            for alias in stmt.names:
                env.pop(alias.asname or alias.name.split(".")[0], None)

    def _bind_target(
        self, target: ast.AST, value_node: ast.AST, value: object, env: Env
    ) -> None:
        if isinstance(target, ast.Name):
            if value is UNKNOWN:
                env.pop(target.id, None)
            else:
                env[target.id] = value
            return
        if isinstance(target, (ast.Tuple, ast.List)):
            dims = self._shape_tuple_dims(value_node, env)
            names = [
                elt.id if isinstance(elt, ast.Name) else None for elt in target.elts
            ]
            if dims is not None and len(dims) == len(names):
                for name, dim in zip(names, dims):
                    if name is not None:
                        env[name] = DimVal(dim)
                return
            for elt in target.elts:
                self._drop_target(elt, env)

    def _drop_target(self, target: ast.AST, env: Env) -> None:
        if isinstance(target, ast.Name):
            env.pop(target.id, None)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._drop_target(elt, env)

    def _shape_tuple_dims(
        self, node: ast.AST, env: Env
    ) -> Optional[Tuple[Dim, ...]]:
        """Dims of ``x.shape`` when x's full rank is known, else None."""
        if (
            isinstance(node, ast.Attribute)
            and node.attr == "shape"
            and isinstance(node.value, ast.Name)
        ):
            shape = env.get(node.value.id)
            if isinstance(shape, ShapeVal) and not shape.lead_unknown:
                return shape.dims
        return None

    # -- expressions ---------------------------------------------------
    def eval(self, node: Optional[ast.AST], env: Env) -> object:
        """Abstract value of an expression (UNKNOWN when untracked)."""
        if node is None:
            return UNKNOWN
        if isinstance(node, ast.Name):
            return env.get(node.id, UNKNOWN)
        if isinstance(node, ast.Call):
            return self._eval_call(node, env)
        if isinstance(node, ast.Subscript):
            return self._eval_subscript(node, env)
        if isinstance(node, ast.IfExp):
            self.eval(node.test, env)
            then = self.eval(node.body, env)
            other = self.eval(node.orelse, env)
            from .domain import join_values

            return join_values(then, other)
        if isinstance(node, ast.Attribute):
            # self.<attr> holding a known layer instance.
            if (
                self.cls is not None
                and isinstance(node.value, ast.Name)
                and node.value.id == "self"
            ):
                return self.cls.attrs.get(node.attr, UNKNOWN)
            return UNKNOWN
        if isinstance(node, (ast.BinOp, ast.BoolOp, ast.Compare, ast.UnaryOp)):
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.expr):
                    self.eval(child, env)
            return UNKNOWN
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
            return UNKNOWN
        return UNKNOWN

    def _eval_subscript(self, node: ast.Subscript, env: Env) -> object:
        """Indexing/slicing a tracked array (``x[0]``, ``x[:, None]``)."""
        base = node.value
        # x.shape[i] -> the i-th dimension as a scalar.
        if (
            isinstance(base, ast.Attribute)
            and base.attr == "shape"
            and isinstance(node.slice, ast.Constant)
            and isinstance(node.slice.value, int)
        ):
            shape = self.eval(base.value, env)
            if isinstance(shape, ShapeVal) and not shape.lead_unknown:
                idx = node.slice.value
                if -len(shape.dims) <= idx < len(shape.dims):
                    return DimVal(shape.dims[idx])
            return UNKNOWN
        src = self.eval(base, env)
        if not isinstance(src, ShapeVal) or src.lead_unknown:
            return UNKNOWN
        indices = (
            list(node.slice.elts)
            if isinstance(node.slice, ast.Tuple)
            else [node.slice]
        )
        dims: List[Dim] = []
        pos = 0
        for idx in indices:
            if isinstance(idx, ast.Constant) and idx.value is None:
                dims.append(Dim.of_int(1))  # np.newaxis inserts a dim
                continue
            if pos >= len(src.dims):
                return UNKNOWN
            if isinstance(idx, ast.Slice):
                full = idx.lower is None and idx.upper is None and idx.step is None
                dims.append(src.dims[pos] if full else TOP_DIM)
                pos += 1
                continue
            if self._int_const(idx) is not None:
                pos += 1  # integer index drops the dim
                continue
            return UNKNOWN  # fancy/ellipsis/dynamic indexing: give up
        dims.extend(src.dims[pos:])
        shape = ShapeVal(tuple(dims), dtype=src.dtype, chain=src.chain)
        return shape.with_step(
            f"subscript at line {getattr(node, 'lineno', 0)} -> {shape.render()}"
        )

    @staticmethod
    def _int_const(node: ast.AST) -> Optional[int]:
        """The value of an (optionally negated) integer literal."""
        if isinstance(node, ast.Constant) and isinstance(node.value, int):
            return node.value
        if (
            isinstance(node, ast.UnaryOp)
            and isinstance(node.op, ast.USub)
            and isinstance(node.operand, ast.Constant)
            and isinstance(node.operand.value, int)
        ):
            return -node.operand.value
        return None

    def eval_dim(self, node: ast.AST, env: Env) -> Dim:
        """A tuple element used as a dimension."""
        if isinstance(node, ast.Constant) and isinstance(node.value, int):
            return Dim.of_int(node.value)
        if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
            if isinstance(node.operand, ast.Constant) and isinstance(
                node.operand.value, int
            ):
                return Dim.of_int(-node.operand.value)
        if isinstance(node, ast.Name):
            value = env.get(node.id, UNKNOWN)
            if isinstance(value, DimVal):
                return value.dim
            if value is UNKNOWN:
                return Dim.sym(node.id)
            return TOP_DIM
        if isinstance(node, ast.Attribute):
            dotted = ast.unparse(node)
            return Dim.sym(dotted)
        if isinstance(node, ast.Subscript):
            # x.shape[i] with known shape -> that dim.
            base = node.value
            if (
                isinstance(base, ast.Attribute)
                and base.attr == "shape"
                and isinstance(base.value, ast.Name)
                and isinstance(node.slice, ast.Constant)
                and isinstance(node.slice.value, int)
            ):
                shape = env.get(base.value.id)
                if isinstance(shape, ShapeVal) and not shape.lead_unknown:
                    idx = node.slice.value
                    if -len(shape.dims) <= idx < len(shape.dims):
                        return shape.dims[idx]
        return TOP_DIM

    # -- calls ---------------------------------------------------------
    def _eval_call(self, node: ast.Call, env: Env) -> object:
        for arg in node.args:
            if not isinstance(arg, (ast.Name, ast.Constant)):
                self.eval(arg, env)
        func = node.func
        dotted = resolve_dotted(func, self.imap)
        # numpy constructors -------------------------------------------
        if dotted and dotted.startswith("numpy."):
            return self._eval_numpy(node, dotted, env)
        # known layer constructors -------------------------------------
        layer = resolve_layer(dotted) if not isinstance(func, ast.Attribute) else None
        if layer is not None and not self._shadowed(dotted):
            return self._eval_ctor(node, layer, env)
        # method calls on tracked values -------------------------------
        if isinstance(func, ast.Attribute):
            receiver = self.eval(func.value, env)
            if isinstance(receiver, InstanceVal):
                spec = specs_by_short_name().get(
                    receiver.layer.rpartition(".")[2]
                )
                if spec is not None and func.attr in spec.methods:
                    return self._apply_contract(node, receiver, spec, func.attr, env)
            if isinstance(receiver, ShapeVal):
                if func.attr == "reshape":
                    return self._eval_reshape(node, receiver, env)
                if func.attr == "astype":
                    family = _dtype_family(node.args[0]) if node.args else None
                    return ShapeVal(
                        receiver.dims, receiver.lead_unknown, family, receiver.chain
                    )
            if receiver is UNKNOWN and func.attr == "reshape":
                return self._eval_reshape(node, None, env)
        return UNKNOWN

    def _shadowed(self, dotted: Optional[str]) -> bool:
        """Whether the module redefines the layer name itself.

        A module-level class with a known layer's bare name shadows the
        builtin table — unless the module *is* the layer's home module.
        """
        if not dotted:
            return True
        short = dotted.rpartition(".")[2]
        for stmt in self.module.tree.body:
            if isinstance(stmt, ast.ClassDef) and stmt.name == short:
                home = specs_by_short_name().get(short)
                own = f"{self.module.module_path}.{short}"
                return home is None or own != home.qualname
        return False

    def _eval_numpy(self, node: ast.Call, dotted: str, env: Env) -> object:
        name = dotted[len("numpy."):]
        dtype_kw = next(
            (kw.value for kw in node.keywords if kw.arg == "dtype"), None
        )
        family = _dtype_family(dtype_kw)
        line = getattr(node, "lineno", 0)
        if name in _NP_SHAPED and node.args:
            dims = self._dims_of_arg(node.args[0], env)
            if dims is None:
                return UNKNOWN
            shape = ShapeVal(dims, dtype=family or "float")
            return shape.with_step(f"np.{name} at line {line} -> {shape.render()}")
        if name in _NP_LIKE and node.args:
            src = self.eval(node.args[0], env)
            if isinstance(src, ShapeVal):
                out = ShapeVal(src.dims, src.lead_unknown, family or src.dtype, src.chain)
                return out.with_step(f"np.{name} at line {line} -> {out.render()}")
            return UNKNOWN
        if name in _NP_PASSTHROUGH and node.args:
            src = self.eval(node.args[0], env)
            if isinstance(src, ShapeVal):
                return ShapeVal(src.dims, src.lead_unknown, family or src.dtype, src.chain)
            if family is not None:
                shape = ShapeVal((), lead_unknown=True, dtype=family)
                return shape.with_step(
                    f"np.{name}(dtype=...) at line {line} -> {shape.render()}"
                )
            return UNKNOWN
        return UNKNOWN

    def _dims_of_arg(self, arg: ast.AST, env: Env) -> Optional[Tuple[Dim, ...]]:
        if isinstance(arg, (ast.Tuple, ast.List)):
            return tuple(self.eval_dim(elt, env) for elt in arg.elts)
        if isinstance(arg, ast.Constant) and isinstance(arg.value, int):
            return (Dim.of_int(arg.value),)
        if isinstance(arg, ast.Name):
            value = env.get(arg.id, UNKNOWN)
            if isinstance(value, DimVal):
                return (value.dim,)
        return None

    def _eval_ctor(self, node: ast.Call, layer: LayerSpec, env: Env) -> object:
        binds: Dict[str, Dim] = {}
        for param, arg in zip(layer.init_params, node.args):
            binds[param] = self.eval_dim(arg, env)
        for kw in node.keywords:
            if kw.arg in layer.init_params:
                binds[kw.arg] = self.eval_dim(kw.value, env)
        return InstanceVal(
            layer=layer.qualname, binds=tuple(sorted(binds.items()))
        )

    def _eval_reshape(
        self, node: ast.Call, src: Optional[ShapeVal], env: Env
    ) -> object:
        args = node.args
        if len(args) == 1 and isinstance(args[0], (ast.Tuple, ast.List)):
            args = list(args[0].elts)
        if not args:
            return UNKNOWN
        dims = []
        for arg in args:
            dim = self.eval_dim(arg, env)
            if dim.kind == "int" and dim.value == -1:
                dim = TOP_DIM
            dims.append(dim)
        dtype = src.dtype if src is not None else None
        chain = src.chain if src is not None else ()
        shape = ShapeVal(tuple(dims), dtype=dtype, chain=chain)
        return shape.with_step(
            f"reshape at line {getattr(node, 'lineno', 0)} -> {shape.render()}"
        )

    # -- contracts -----------------------------------------------------
    def _apply_contract(
        self,
        node: ast.Call,
        receiver: InstanceVal,
        layer: LayerSpec,
        method: str,
        env: Env,
    ) -> object:
        inp, out = layer.methods[method]
        bindings: Dict[str, Dim] = {}
        label = f"{layer.name}.{method}"
        # Multi-group input contracts check leading positional args in
        # order with shared bindings (a mismatch in B across the groups
        # of a batched stateful call is provable, just like a runtime
        # binding conflict).
        in_specs = inp if isinstance(inp, tuple) else (inp,)
        arg_val = self.eval(node.args[0], env) if node.args else UNKNOWN
        values = [arg_val]
        for extra in node.args[1 : len(in_specs)]:
            values.append(self.eval(extra, env))
        for spec, value in zip(in_specs, values):
            if spec is not None and isinstance(value, ShapeVal):
                self._check_shape(node, label, receiver, spec, value, bindings)
        if out is None or isinstance(out, tuple):
            # Tuple outputs (e.g. step_batch's (h, states)) are not a
            # single tracked array; the result evaluates to unknown.
            return UNKNOWN
        first = in_specs[0]
        lead_unknown = True
        lead: Tuple[Dim, ...] = ()
        if out.ellipsis_lead:
            if (
                isinstance(arg_val, ShapeVal)
                and not arg_val.lead_unknown
                and first is not None
                and first.ellipsis_lead
                and len(arg_val.dims) >= len(first.dims)
            ):
                lead = arg_val.dims[: len(arg_val.dims) - len(first.dims)]
                lead_unknown = False
        else:
            lead_unknown = False
        dims = lead + tuple(
            self._resolve_spec_dim(d, receiver, bindings, node) for d in out.dims
        )
        chain = arg_val.chain if isinstance(arg_val, ShapeVal) else ()
        shape = ShapeVal(dims, lead_unknown, _spec_dtype(out), chain)
        return shape.with_step(
            f"{label} at line {getattr(node, 'lineno', 0)} -> {shape.render()}"
        )

    def _resolve_spec_dim(
        self,
        dim: object,
        receiver: Optional[InstanceVal],
        bindings: Dict[str, Dim],
        node: ast.AST,
    ) -> Dim:
        if isinstance(dim, int):
            return Dim.of_int(dim)
        name = str(dim)
        if receiver is not None:
            bound = receiver.bound(name)
            if bound is not None:
                return bound
        if receiver is None and self.cls is not None:
            # Analyzing the layer's own method: dims live on self.
            if name not in bindings:
                return Dim.sym(f"self.{name}")
        if name in bindings:
            return bindings[name]
        return Dim.sym(f"{name}@{getattr(node, 'lineno', 0)}")

    def _check_shape(
        self,
        node: ast.AST,
        label: str,
        receiver: Optional[InstanceVal],
        spec,
        actual: ShapeVal,
        bindings: Dict[str, Dim],
    ) -> None:
        """Compare an inferred shape against a TensorSpec; report provables."""
        chain = " ; ".join(actual.chain) or actual.render()
        # Rank.
        if not actual.lead_unknown:
            if spec.ellipsis_lead:
                if len(actual.dims) < len(spec.dims):
                    self._report(
                        node,
                        f"{label} expects {spec.describe()} but gets rank-"
                        f"{len(actual.dims)} {actual.render()} [{chain}]",
                    )
                    return
            elif len(actual.dims) != len(spec.dims):
                self._report(
                    node,
                    f"{label} expects rank-{len(spec.dims)} {spec.describe()} "
                    f"but gets rank-{len(actual.dims)} {actual.render()} "
                    f"[{chain}]",
                )
                return
        elif not spec.ellipsis_lead and len(actual.dims) > len(spec.dims):
            return  # cannot align reliably
        # Trailing dims.
        tail = actual.dims[len(actual.dims) - len(spec.dims):] if spec.dims else ()
        if len(tail) == len(spec.dims):
            for spec_dim, actual_dim in zip(spec.dims, tail):
                expected = self._expected_dim(spec_dim, receiver, bindings, actual_dim)
                if expected is not None and expected.provably_differs(actual_dim):
                    self._report(
                        node,
                        f"{label} expects {spec.describe()} (dim "
                        f"{spec_dim} = {expected.render()}) but gets "
                        f"{actual.render()} [{chain}]",
                    )
                    return
        # Dtype.
        want = _spec_dtype(spec)
        if want is not None and actual.dtype is not None and actual.dtype != want:
            self._report(
                node,
                f"{label} expects dtype {want} but gets "
                f"{actual.render()} [{chain}]",
            )

    def _expected_dim(
        self,
        spec_dim: object,
        receiver: Optional[InstanceVal],
        bindings: Dict[str, Dim],
        actual: Dim,
    ) -> Optional[Dim]:
        if isinstance(spec_dim, int):
            return Dim.of_int(spec_dim)
        name = str(spec_dim)
        if receiver is not None:
            bound = receiver.bound(name)
            if bound is not None:
                return bound
        if name in bindings:
            return bindings[name]
        bindings[name] = actual  # bind-on-first-use, like the runtime check
        return None

    def _check_return(self, stmt: ast.Return, value: object) -> None:
        if self.own_contract is None or not isinstance(value, ShapeVal):
            return
        _, out = self.own_contract
        if out is None or isinstance(out, tuple):
            return  # tuple returns are not a single checkable array
        bindings = dict(self._seed_bindings())
        self._check_shape(
            stmt, f"{self._func_label()} return", None, out, value, bindings
        )

    def _func_label(self) -> str:
        prefix = f"{self.cls.name}." if self.cls and self.cls.name else ""
        return f"{prefix}{getattr(self.func, 'name', '<lambda>')}"

    # -- own-contract seeding ------------------------------------------
    def _seed_bindings(self) -> Dict[str, Dim]:
        """Input-spec identifiers -> the symbolic dims seeded for them."""
        if self.own_contract is None:
            return {}
        inp, _ = self.own_contract
        if isinstance(inp, tuple):
            inp = inp[0]  # the first group describes the first parameter
        if inp is None:
            return {}
        out: Dict[str, Dim] = {}
        for dim in inp.dims:
            if not isinstance(dim, int):
                out[str(dim)] = self._seeded_dim(str(dim))
        return out

    def _seeded_dim(self, name: str) -> Dim:
        """How an input-spec identifier was seeded for self-analysis."""
        if self.cls is not None and self.cls.own_spec is None:
            return Dim.sym(f"self.{name}")
        # Known layer / free function: attribute dims resolve on self.
        return Dim.sym(f"self.{name}") if self._is_attr_dim(name) else Dim.sym(name)

    def _is_attr_dim(self, name: str) -> bool:
        spec = self.cls.own_spec if self.cls is not None else None
        return spec is not None and name in spec.init_params

    def seed_env(self) -> Env:
        """Initial environment: the contracted first parameter, if any."""
        env: Env = {}
        if self.own_contract is None:
            return env
        inp, _ = self.own_contract
        if isinstance(inp, tuple):
            inp = inp[0]  # seed only the first parameter's group
        if inp is None:
            return env
        args = getattr(self.func, "args", None)
        if args is None:
            return env
        names = [a.arg for a in args.args]
        if names and names[0] == "self":
            names = names[1:]
        if not names:
            return env
        dims = tuple(
            Dim.of_int(d) if isinstance(d, int) else self._seeded_dim(str(d))
            for d in inp.dims
        )
        shape = ShapeVal(
            dims, lead_unknown=inp.ellipsis_lead, dtype=_spec_dtype(inp)
        )
        env[names[0]] = shape.with_step(
            f"{self._func_label()} contract input {shape.render()}"
        )
        return env

    def _report(self, node: ast.AST, message: str) -> None:
        if self.findings is not None:
            self.findings.append(self.module.finding(node, self.rule_id, message))


def _own_contract(func: ast.AST, imap: ImportMap, cls: Optional[_ClassContext]):
    """The (input, output) TensorSpecs declared on *func* itself."""
    for deco in getattr(func, "decorator_list", []):
        if not isinstance(deco, ast.Call) or not deco.args:
            continue
        dotted = resolve_dotted(deco.func, imap) or ""
        if dotted.rpartition(".")[2] != "tensor_contract":
            continue
        arg = deco.args[0]
        if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
            return parse_contract(arg.value)
    if cls is not None and cls.own_spec is not None:
        name = getattr(func, "name", "")
        if name in cls.own_spec.methods:
            return cls.own_spec.methods[name]
    return None


class _ShapeDomain(Domain):
    """Env-per-block shape domain feeding the generic solver."""

    def __init__(self, interp: _Interp) -> None:
        self.interp = interp

    def initial(self) -> Env:
        """Entry environment (the contracted parameter seeded)."""
        return self.interp.seed_env()

    def join(self, a: Env, b: Env) -> Env:
        """Pointwise environment join."""
        return join_envs(a, b)

    def transfer(self, block: Block, state: Env) -> Env:
        """Run the block's statements over a copy of *state*."""
        env = dict(state)
        for stmt in block.stmts:
            self.interp.exec_stmt(stmt, env)
        return env


def _class_context(
    module: ModuleInfo, imap: ImportMap, cls_node: Optional[ast.ClassDef]
) -> Optional[_ClassContext]:
    if cls_node is None:
        return None
    ctx = _ClassContext()
    ctx.name = cls_node.name
    own = specs_by_short_name().get(cls_node.name)
    if own is not None and f"{module.module_path}.{cls_node.name}" == own.qualname:
        ctx.own_spec = own
    init = next(
        (
            n
            for n in cls_node.body
            if isinstance(n, ast.FunctionDef) and n.name == "__init__"
        ),
        None,
    )
    if init is None:
        return ctx
    interp = _Interp(module, imap, None, init)
    env: Env = {}
    for stmt in ast.walk(init):
        if not isinstance(stmt, ast.Assign) or len(stmt.targets) != 1:
            continue
        target = stmt.targets[0]
        value = interp.eval(stmt.value, env)
        if isinstance(target, ast.Name) and value is not UNKNOWN:
            env[target.id] = value
        if (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
            and isinstance(value, InstanceVal)
        ):
            ctx.attrs[target.attr] = value
    return ctx


def _functions(tree: ast.Module):
    """(class node or None, function node) pairs, module level only."""
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield None, node
        elif isinstance(node, ast.ClassDef):
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    yield node, item


@register
class ShapeFlowRule(Rule):
    """Statically-provable tensor shape/dtype violations at layer call sites."""

    id = "F1"
    category = "dataflow"
    summary = (
        "dataflow shape checking: abstract-interpret numpy/repro.nn code "
        "against declared @tensor_contract specs; report provable "
        "shape/dtype mismatches with the inferred shape chain"
    )

    def check_module(self, module: ModuleInfo) -> Sequence[Finding]:
        """Analyze every function of *module* with the shape domain."""
        findings: List[Finding] = []
        imap = build_import_map(module.tree, module.module_path)
        contexts: Dict[Optional[ast.ClassDef], Optional[_ClassContext]] = {}
        for cls_node, func in _functions(module.tree):
            if cls_node not in contexts:
                contexts[cls_node] = _class_context(module, imap, cls_node)
            cls_ctx = contexts[cls_node]
            cfg = build_cfg(func)
            interp = _Interp(module, imap, cls_ctx, func)
            result = solve(cfg, _ShapeDomain(interp))
            reporter = _Interp(module, imap, cls_ctx, func, findings, self.id)
            for block_id, in_state in result.in_states.items():
                env = dict(in_state)
                for stmt in cfg.block(block_id).stmts:
                    reporter.exec_stmt(stmt, env)
        return findings
