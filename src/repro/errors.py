"""Exception hierarchy for the Desh reproduction.

Every error raised by this package derives from :class:`ReproError` so that
callers can catch package-level failures with a single ``except`` clause
while still distinguishing subsystem-specific faults.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigError",
    "TopologyError",
    "NodeIdError",
    "LogGenerationError",
    "ParseError",
    "TemplateMinerError",
    "VocabularyError",
    "LabelingError",
    "ShapeError",
    "NotFittedError",
    "TrainingError",
    "ChainExtractionError",
    "PredictionError",
    "DatasetError",
    "SerializationError",
    "IngestError",
    "CheckpointError",
    "ParallelError",
    "PipelineError",
    "ArtifactError",
    "ContractError",
    "LintError",
    "ObservabilityError",
    "ServeError",
    "InjectedFaultError",
]


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class ConfigError(ReproError, ValueError):
    """An invalid configuration value was supplied."""


class TopologyError(ReproError, ValueError):
    """A cluster topology constraint was violated."""


class NodeIdError(TopologyError):
    """A Cray node identifier could not be parsed or is out of range."""


class LogGenerationError(ReproError, RuntimeError):
    """The synthetic log generator could not satisfy its constraints."""


class ParseError(ReproError, ValueError):
    """A raw log line could not be parsed."""


class TemplateMinerError(ReproError, RuntimeError):
    """The Drain-style template miner entered an inconsistent state."""


class VocabularyError(ReproError, KeyError):
    """A phrase or phrase id is unknown to the vocabulary."""


class LabelingError(ReproError, ValueError):
    """A phrase label is invalid or a label catalog is malformed."""


class ShapeError(ReproError, ValueError):
    """An array argument had an incompatible shape."""


class NotFittedError(ReproError, RuntimeError):
    """A model method requiring a fitted model was called before fitting."""


class TrainingError(ReproError, RuntimeError):
    """Model training diverged or received unusable data."""


class ChainExtractionError(ReproError, RuntimeError):
    """Failure-chain extraction was given inconsistent event streams."""


class PredictionError(ReproError, RuntimeError):
    """Phase-3 inference failed."""


class DatasetError(ReproError, ValueError):
    """A dataset split or ground-truth join was invalid."""


class SerializationError(ReproError, RuntimeError):
    """A model or vocabulary could not be saved or loaded."""


class IngestError(ReproError, RuntimeError):
    """The hardened ingest front-end exceeded its bad-line error budget."""


class CheckpointError(ReproError, RuntimeError):
    """A training checkpoint could not be written, read, or verified."""


class ParallelError(ReproError, RuntimeError):
    """A parallel map chunk failed; carries the chunk index for diagnosis."""


class PipelineError(ReproError, RuntimeError):
    """The staged pipeline DAG is malformed or a stage failed to execute."""


class ArtifactError(ReproError, RuntimeError):
    """A pipeline artifact could not be written, read, or verified."""


class ContractError(ShapeError):
    """A runtime tensor contract (shape/dtype) was violated.

    Derives from :class:`ShapeError` so callers guarding layer inputs
    with ``except ShapeError`` also catch contract violations.
    """


class LintError(ReproError, RuntimeError):
    """deshlint was invoked incorrectly or hit an unreadable input."""


class ObservabilityError(ReproError, RuntimeError):
    """The tracing/metrics layer was misused (type clash, bad merge, ...)."""


class ServeError(ReproError, RuntimeError):
    """The prediction service was misconfigured or hit an internal fault."""


class InjectedFaultError(ReproError, RuntimeError):
    """A chaos-injected service fault (e.g. a worker crash) fired.

    Raised only by fault-injection hooks during chaos soaks; the
    supervisor treats it like any other worker crash and restarts the
    worker.  It must never appear in production paths.
    """
