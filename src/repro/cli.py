"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``generate``
    Write a synthetic system log (and its ground truth) to disk.
``train``
    Train a Desh model on a raw log file through the staged pipeline
    (stage artifacts cached under ``<model-dir>/cache`` by default) and
    persist the complete model to a model directory.  Re-training with
    a partially changed config re-runs only the invalidated stages.
``predict``
    Load a trained model directory and emit failure warnings for a test
    log.
``pipeline``
    Show a trained model directory's stage DAG: per-stage fingerprints,
    dependencies, cache status and last-run timings.
``evaluate``
    End-to-end: generate (or read) a system, train on the 30% split and
    print the Table-6 metrics plus lead times for the rest.  With
    ``--cache-dir``, training stages and the encoded test stream are
    cached so repeat invocations skip the parse work.  ``--model``
    selects the model-zoo backbone family (``lstm``/``tcn``/
    ``attention``) for both ``train`` and ``evaluate``.
``compare``
    The Table-10-style model-zoo grid: train every requested backbone
    family on every requested system and print recall / accuracy /
    mean lead time / per-prediction latency per cell, optionally as
    JSON.  ``--preset tiny`` shrinks the networks to CI-smoke scale.
``chaos``
    Train once, then score the test split clean *and* after seeded fault
    injection + hardened re-ingest; prints the recall/FP-rate deltas and
    the full fault/quarantine accounting.  Also honors ``--cache-dir``.
``trace``
    Run any other subcommand under an enabled tracer: print the nested
    span tree with real durations, the phase-3 per-prediction latency
    summary (the paper's Fig. 10 reports ~0.65 ms), and optionally
    export spans as JSON lines / metrics as JSON.
``metrics``
    Run any other subcommand with an active metrics registry and print
    (or write) the counter/gauge/histogram snapshot as JSON or
    Prometheus text.
``serve``
    Run the fault-tolerant prediction service over a trained model
    directory: sharded streaming monitors behind bounded queues with
    backpressure/load-shedding, supervised workers, per-shard circuit
    breakers, SSE alert streaming and a Prometheus endpoint.  Graceful
    shutdown drains the queues and (with ``--checkpoint-dir``) writes
    an atomic checkpoint that a restart resumes bit-identically.
``soak``
    Chaos-soak the service: train (or load) a model, stream a rendered
    test log through a live service while injecting service faults
    (worker crashes, stalls, ingest bursts) and print the robustness
    report — restarts, recovery times vs the SLO, shed/retry
    accounting, and bit-identity vs a fault-free run.
``lint``
    Run the deshlint static-analysis gate — syntactic rules R1-R5, the
    dataflow analyses F1-F6 (shape flow, stage artifact flow, parallel
    capture safety, async atomicity, blocking-call reachability,
    orphaned coroutines) and the perf rules P1-P3 (vectorization,
    loop-invariant hoisting, hidden quadratics) — over source paths;
    exits 1 on any finding not covered by an inline suppression or the
    baseline file.  ``--sarif`` additionally writes a SARIF 2.1.0 log
    for GitHub code scanning; ``--rules list`` prints the registry
    grouped by category; ``--jobs N`` analyzes files in parallel;
    ``--profile trace.jsonl`` ranks findings by measured hotness and
    escalates perf findings on hot paths, gated by ``--min-level``.

Examples
--------
::

    python -m repro generate --system M3 --seed 7 --out m3.log.gz \
        --ground-truth m3.json
    python -m repro train --log m3.log.gz --fraction 0.3 --model-dir model/
    python -m repro predict --log m3.log.gz --model-dir model/
    python -m repro evaluate --system M4 --seed 9
    python -m repro compare --models lstm,tcn,attention --system M1
    python -m repro chaos --system M1 --profile moderate --chaos-seed 3
    python -m repro trace predict --log m3.log.gz --model-dir model/
    python -m repro metrics --format prom train --log m3.log.gz \
        --model-dir model/
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Sequence

from .analysis import lead_time_overall
from .config import DeshConfig
from .core import Desh, DeshModel, Phase3Predictor
from .core.deltas import LeadTimeScaler
from .errors import ConfigError, ReproError
from .io import chronological_split, read_records, save_ground_truth, write_log
from .nn.model import SequenceRegressor
from .parsing import LogParser, PhraseVocabulary
from .simlog import generate_system

__all__ = [
    "main",
    "build_parser",
    "save_model",
    "load_predictor",
    "cmd_generate",
    "cmd_train",
    "cmd_predict",
    "cmd_pipeline",
    "cmd_evaluate",
    "cmd_compare",
    "cmd_report",
    "cmd_chaos",
    "cmd_serve",
    "cmd_soak",
    "cmd_lint",
    "cmd_trace",
    "cmd_metrics",
]


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser with all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Desh (HPDC'18) reproduction: node-failure lead-time prediction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    g = sub.add_parser("generate", help="write a synthetic system log")
    g.add_argument("--system", default="M3", help="preset name (M1..M4)")
    g.add_argument("--seed", type=int, default=2018)
    g.add_argument("--out", required=True, help="log file path (.gz supported)")
    g.add_argument("--ground-truth", help="optional ground-truth JSON path")

    t = sub.add_parser("train", help="train Desh on a raw log file")
    t.add_argument("--log", required=True, help="raw training log")
    t.add_argument("--fraction", type=float, default=1.0, help="leading time fraction to use")
    t.add_argument("--model-dir", required=True, help="output directory")
    t.add_argument("--seed", type=int, default=2018)
    t.add_argument(
        "--model",
        default="lstm",
        help="model-zoo backbone family (lstm, tcn, attention)",
    )
    t.add_argument(
        "--cache-dir",
        help="stage artifact cache root (default: <model-dir>/cache)",
    )
    t.add_argument(
        "--no-cache",
        action="store_true",
        help="train fully in memory, skipping the artifact store",
    )

    p = sub.add_parser("predict", help="emit warnings for a test log")
    p.add_argument("--log", required=True, help="raw test log")
    p.add_argument("--model-dir", required=True, help="trained model directory")

    pl = sub.add_parser(
        "pipeline", help="show a model directory's stage DAG and cache status"
    )
    pl.add_argument("--model-dir", required=True, help="trained model directory")

    e = sub.add_parser("evaluate", help="full generate/train/test evaluation")
    e.add_argument("--system", default="M3")
    e.add_argument("--seed", type=int, default=2018)
    e.add_argument("--train-fraction", type=float, default=0.3)
    e.add_argument(
        "--model",
        default="lstm",
        help="model-zoo backbone family (lstm, tcn, attention)",
    )
    e.add_argument(
        "--cache-dir",
        help="artifact cache root for training stages and the parsed test log",
    )

    cp = sub.add_parser(
        "compare",
        help="Table-10-style grid: every model family on every system",
    )
    cp.add_argument(
        "--models",
        default="lstm,tcn,attention",
        help="comma-separated model-zoo families to compare",
    )
    cp.add_argument(
        "--system",
        default="M1",
        help="comma-separated synthetic systems (M1..M4)",
    )
    cp.add_argument(
        "--preset",
        default="paper",
        choices=["paper", "tiny"],
        help="hyperparameter preset: paper (Table 5) or tiny (CI smoke)",
    )
    cp.add_argument("--seed", type=int, default=2018)
    cp.add_argument("--train-fraction", type=float, default=0.3)
    cp.add_argument("--json", help="also write the grid as JSON to this path")
    cp.add_argument(
        "--cache-dir",
        help="artifact cache root (per-model fingerprints keep cells warm)",
    )

    r = sub.add_parser("report", help="write a markdown evaluation report")
    r.add_argument("--system", default="M3")
    r.add_argument("--seed", type=int, default=2018)
    r.add_argument("--train-fraction", type=float, default=0.3)
    r.add_argument("--out", required=True, help="markdown output path")

    li = sub.add_parser(
        "lint", help="run deshlint static analysis (R1-R5, F1-F6, P1-P3)"
    )
    li.add_argument(
        "paths",
        nargs="*",
        help="files/directories to lint (default: the installed repro package)",
    )
    li.add_argument("--json", action="store_true", help="machine-readable output")
    li.add_argument(
        "--rules",
        nargs="?",
        const="list",
        help="comma-separated rule subset (e.g. R1,F2); default: all rules; "
        "bare --rules (or --rules list) prints the registry by category",
    )
    li.add_argument(
        "--sarif",
        metavar="PATH",
        help="also write findings as a SARIF 2.1.0 log (GitHub code scanning)",
    )
    li.add_argument(
        "--baseline",
        help="baseline file of grandfathered findings "
        "(default: ./lint-baseline.json when present)",
    )
    li.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file; report every finding",
    )
    li.add_argument(
        "--update-baseline",
        action="store_true",
        help="grandfather all current findings into the baseline file",
    )
    li.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="analyze N files in parallel (process pool); findings are "
        "reported in the same deterministic order as a serial run",
    )
    li.add_argument(
        "--profile",
        action="append",
        metavar="PATH",
        help="trace JSONL or metrics JSON from `repro trace`; rank "
        "findings by measured hotness and escalate perf findings on "
        "hot paths (repeatable — all files merge into one profile)",
    )
    li.add_argument(
        "--min-level",
        choices=("note", "warning", "error"),
        default="note",
        help="only findings at or above this SARIF level fail the gate "
        "(default: note, i.e. any finding fails — use `error` with "
        "--profile to gate on hot-path perf findings only)",
    )

    tr = sub.add_parser(
        "trace", help="run another subcommand under the tracer"
    )
    tr.add_argument(
        "--trace-out", help="also write the spans as JSON lines"
    )
    tr.add_argument(
        "--metrics-out", help="also write the metrics snapshot as JSON"
    )
    tr.add_argument(
        "wrapped",
        nargs=argparse.REMAINDER,
        help="subcommand (plus its arguments) to run traced",
    )

    mx = sub.add_parser(
        "metrics", help="run another subcommand and report its metrics"
    )
    mx.add_argument(
        "--out", help="write the snapshot to this file instead of stdout"
    )
    mx.add_argument(
        "--format",
        choices=["json", "prom"],
        default="json",
        help="snapshot format: JSON (default) or Prometheus text",
    )
    mx.add_argument(
        "wrapped",
        nargs=argparse.REMAINDER,
        help="subcommand (plus its arguments) to run measured",
    )

    c = sub.add_parser("chaos", help="measure degradation under injected faults")
    c.add_argument("--system", default="M3")
    c.add_argument("--seed", type=int, default=2018)
    c.add_argument("--train-fraction", type=float, default=0.3)
    c.add_argument(
        "--profile",
        default="moderate",
        help="fault profile name (none/mild/moderate/severe)",
    )
    c.add_argument("--chaos-seed", type=int, default=0, help="fault injector seed")
    c.add_argument(
        "--corrupt-rate",
        type=float,
        help="override the profile's line-corruption rate",
    )
    c.add_argument(
        "--reorder-window",
        type=int,
        help="override the profile's reordering window",
    )
    c.add_argument(
        "--max-bad-ratio",
        type=float,
        default=None,
        help="ingest error budget (default: IngestConfig default)",
    )
    c.add_argument(
        "--cache-dir",
        help="artifact cache root for training stages and the parsed test log",
    )

    sv = sub.add_parser(
        "serve", help="run the fault-tolerant prediction service"
    )
    sv.add_argument("--model-dir", required=True, help="trained model directory")
    sv.add_argument("--host", default="127.0.0.1")
    sv.add_argument(
        "--port", type=int, default=8633, help="listen port (0 picks a free one)"
    )
    sv.add_argument("--shards", type=int, default=4, help="monitor shards")
    sv.add_argument(
        "--queue-depth", type=int, default=256, help="per-shard queue capacity"
    )
    sv.add_argument(
        "--deadline-ms",
        type=int,
        default=250,
        help="default prediction deadline in milliseconds",
    )
    sv.add_argument(
        "--checkpoint-dir",
        help="write a resume checkpoint here on graceful shutdown "
        "(and restore the latest one on start)",
    )
    sv.add_argument(
        "--no-restore",
        action="store_true",
        help="start fresh even when --checkpoint-dir holds a checkpoint",
    )
    sv.add_argument(
        "--max-seconds",
        type=float,
        help="serve for this long then shut down gracefully (CI smoke)",
    )

    sk = sub.add_parser(
        "soak", help="chaos-soak the prediction service and print the report"
    )
    sk.add_argument("--system", default="M1")
    sk.add_argument("--seed", type=int, default=2018)
    sk.add_argument("--train-fraction", type=float, default=0.3)
    sk.add_argument(
        "--profile",
        default="service-crash",
        help="fault profile name (service-crash/service-storm/...)",
    )
    sk.add_argument("--chaos-seed", type=int, default=0, help="fault injector seed")
    sk.add_argument(
        "--batch-size", type=int, default=64, help="ingest batch size in lines"
    )
    sk.add_argument(
        "--max-lines", type=int, help="cap the soaked stream at this many lines"
    )
    sk.add_argument(
        "--cache-dir", help="artifact cache root for the training stages"
    )
    sk.add_argument("--json", action="store_true", help="print the report as JSON")
    return parser


# ----------------------------------------------------------------------
# model persistence
# ----------------------------------------------------------------------
def save_model(model: DeshModel, directory: str | Path) -> None:
    """Persist a trained model *completely* (pipeline format 2).

    Historically this kept only the phase-2 regressor, vocabulary and
    scaler — a reloaded "model" could score episodes but had lost its
    embeddings, failure chains and classifier.  It now delegates to
    :func:`repro.pipeline.save_model`, whose directory layout is a
    strict superset of the legacy files, so :func:`load_predictor`
    keeps working on newly written directories while
    :meth:`DeshModel.load` restores everything.
    """
    from .pipeline.persist import save_model as _save_full_model

    _save_full_model(model, directory)


def load_predictor(
    directory: str | Path, config: DeshConfig
) -> tuple[LogParser, Phase3Predictor]:
    """Rebuild a parser + phase-3 predictor from a model directory.

    The parser is reconstructed from the persisted vocabulary so phrase
    ids match training exactly; the learned regressor weights and scaler
    parameters come from disk.
    """
    directory = Path(directory)
    regressor = SequenceRegressor.load(directory / "phase2.npz")
    meta = json.loads((directory / "meta.json").read_text())
    scaler = LeadTimeScaler(
        max_lead_seconds=float(meta["max_lead_seconds"]),
        vocab_size=int(meta["vocab_size"]),
        id_scale=float(meta["id_scale"]),
    )
    vocab = PhraseVocabulary.load(directory / "vocab.json")
    parser = LogParser.from_vocabulary(vocab)
    predictor = Phase3Predictor(
        regressor,
        scaler,
        config=config.phase3,
        episode_gap=config.phase2.max_lead_seconds,
    )
    return parser, predictor


# ----------------------------------------------------------------------
# commands
# ----------------------------------------------------------------------
def cmd_generate(args: argparse.Namespace) -> int:
    """``repro generate``: write a synthetic system log (+ ground truth)."""
    log = generate_system(args.system, seed=args.seed)
    count = write_log(args.out, log.records)
    print(f"wrote {count} records to {args.out}")
    if args.ground_truth:
        save_ground_truth(args.ground_truth, log.ground_truth)
        print(f"wrote ground truth to {args.ground_truth}")
    return 0


def _write_pipeline_manifest(
    model_dir: Path, result, data_fingerprint: str, cache_dir: "Path | None"
) -> None:
    """Record the training run's stage provenance next to the model."""
    manifest = {
        "data_fingerprint": data_fingerprint,
        "cache_dir": str(cache_dir) if cache_dir is not None else None,
        "train_classifier": False,
        "stages": [
            {
                "name": r.name,
                "fingerprint": r.fingerprint,
                "cache_hit": r.cache_hit,
                "seconds": r.seconds,
                "deps": list(r.deps),
            }
            for r in result.reports
        ],
    }
    (model_dir / "pipeline.json").write_text(json.dumps(manifest, indent=1))


def cmd_train(args: argparse.Namespace) -> int:
    """``repro train``: fit Desh through the staged pipeline and persist."""
    from .obs import current_tracer
    from .pipeline import DeshPipeline, assemble_model

    with current_tracer().span("ingest.read", path=str(args.log)) as span:
        records = list(read_records(args.log))
        span.set(records=len(records))
    if not 0.0 < args.fraction <= 1.0:
        raise ReproError(f"--fraction must be in (0, 1], got {args.fraction}")
    if args.fraction < 1.0:
        records, _ = chronological_split(records, args.fraction)
    config = DeshConfig(seed=args.seed, model=args.model)
    model_dir = Path(args.model_dir)
    cache_dir: Path | None = None
    if not args.no_cache:
        cache_dir = Path(args.cache_dir) if args.cache_dir else model_dir / "cache"
    pipeline = DeshPipeline(config, train_classifier=False, cache_dir=cache_dir)
    data_fingerprint = pipeline.data_fingerprint(records)
    result = pipeline.run(records, data_fingerprint=data_fingerprint)
    model = assemble_model(config, result)
    save_model(model, model_dir)
    _write_pipeline_manifest(model_dir, result, data_fingerprint, cache_dir)
    for r in result.reports:
        status = "cached" if r.cache_hit else "ran"
        print(f"  {r.name:<11} {status:>6} {r.seconds:8.2f}s  {r.fingerprint[:12]}")
    print(
        f"trained on {len(records)} records: {model.num_phrases} phrases, "
        f"{model.num_chains} failure chains -> {args.model_dir}"
        + (f" (cache: {cache_dir})" if cache_dir is not None else "")
    )
    return 0


def cmd_predict(args: argparse.Namespace) -> int:
    """``repro predict``: emit failure warnings for a test log."""
    from .errors import SerializationError
    from .pipeline.persist import load_model

    config = DeshConfig()
    try:
        model = load_model(args.model_dir)
        parser, predictor = model.parser, model.predictor
    except SerializationError:
        # Legacy (format-1) model directory: regressor + vocab only.
        parser, predictor = load_predictor(args.model_dir, config)
    from .obs import current_tracer

    with current_tracer().span("ingest.read", path=str(args.log)) as span:
        records = list(read_records(args.log))
        span.set(records=len(records))
    parsed = parser.transform(records)
    sequences = [s for s in parsed.by_node().values() if s.node is not None]
    verdicts = predictor.predict_sequences(sequences)
    from .core.alerts import FailureWarning

    warnings = [
        FailureWarning.from_prediction(p) for p in predictor.predictions(verdicts)
    ]
    for w in warnings:
        print(w.message())
    print(f"{len(warnings)} warnings over {len(records)} records", file=sys.stderr)
    return 0


def cmd_pipeline(args: argparse.Namespace) -> int:
    """``repro pipeline``: print a model directory's stage DAG + cache state."""
    from .config import DeshConfig as _DeshConfig
    from .pipeline import ArtifactStore, PipelineRunner, build_desh_stages

    model_dir = Path(args.model_dir)
    manifest_path = model_dir / "pipeline.json"
    if not manifest_path.exists():
        raise ReproError(
            f"{model_dir} has no pipeline.json; re-train it with `repro train`"
        )
    manifest = json.loads(manifest_path.read_text())
    config_path = model_dir / "config.json"
    if config_path.exists():
        config = _DeshConfig.from_dict(json.loads(config_path.read_text()))
    else:
        config = _DeshConfig()
    cache_dir = manifest.get("cache_dir")
    store = ArtifactStore(cache_dir) if cache_dir else None
    runner = PipelineRunner(
        build_desh_stages(
            config, train_classifier=manifest.get("train_classifier", True)
        ),
        store=store,
    )
    last_run = {s["name"]: s for s in manifest.get("stages", [])}
    plans = runner.plan(manifest["data_fingerprint"])
    print(f"stage DAG for {model_dir} (data {manifest['data_fingerprint'][:12]}):")
    for row in plans:
        deps = ", ".join(row.deps) if row.deps else "(source)"
        status = "cached" if row.cached else "stale" if store else "no-cache"
        seconds = last_run.get(row.name, {}).get("seconds")
        timing = f"{seconds:8.2f}s" if seconds is not None else "       -"
        print(
            f"  {row.name:<11} {row.fingerprint[:16]}  {status:<8} "
            f"{timing}  <- {deps}"
        )
    cached = sum(1 for row in plans if row.cached)
    print(
        f"{cached}/{len(plans)} stages cached"
        + (f" under {cache_dir}" if cache_dir else " (no artifact store)")
    )
    return 0


def _artifact_store(cache_dir: "str | None"):
    """An :class:`ArtifactStore` over *cache_dir*, or ``None``."""
    if cache_dir is None:
        return None
    from .pipeline import ArtifactStore

    return ArtifactStore(cache_dir)


def cmd_evaluate(args: argparse.Namespace) -> int:
    """``repro evaluate``: end-to-end train/test with Table-6 metrics.

    ``--cache-dir`` routes both training and the test-side parse through
    the artifact store: a repeat invocation with the same system/seed
    re-runs nothing but the final phase-3 scoring.
    """
    from .analysis import evaluate_model

    log = generate_system(args.system, seed=args.seed)
    train, test = log.split(args.train_fraction)
    model = Desh(DeshConfig(seed=args.seed, model=args.model)).fit(
        list(train.records), train_classifier=False, cache_dir=args.cache_dir
    )
    result = evaluate_model(
        model,
        list(test.records),
        test.ground_truth,
        store=_artifact_store(args.cache_dir),
    )
    m = result.metrics
    lead = lead_time_overall(result)
    print(f"system {args.system} (seed {args.seed}, model {args.model}):")
    print(f"  recall    {m.recall:6.2f}%   precision {m.precision:6.2f}%")
    print(f"  accuracy  {m.accuracy:6.2f}%   F1        {m.f1:6.2f}%")
    print(f"  FP rate   {m.fp_rate:6.2f}%   FN rate   {m.fn_rate:6.2f}%")
    print(f"  avg lead  {lead.mean:6.1f}s over {lead.count} true positives")
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    """``repro compare``: the Table-10-style model-zoo grid.

    Trains every requested backbone family on every requested system
    and prints the aligned grid (recall / accuracy / lead time /
    per-prediction latency); ``--json`` also writes it as JSON.
    """
    from .analysis import compare_models

    models = [m.strip() for m in args.models.split(",") if m.strip()]
    systems = [s.strip() for s in args.system.split(",") if s.strip()]
    result = compare_models(
        models,
        systems,
        preset=args.preset,
        seed=args.seed,
        train_fraction=args.train_fraction,
        cache_dir=args.cache_dir,
    )
    print(result.render())
    if args.json:
        Path(args.json).write_text(result.to_json())
        print(f"wrote {args.json}")
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    """``repro report``: write a full markdown evaluation report."""
    from .analysis import system_report

    log = generate_system(args.system, seed=args.seed)
    train, test = log.split(args.train_fraction)
    model = Desh(DeshConfig(seed=args.seed)).fit(
        list(train.records), train_classifier=False
    )
    report = system_report(
        model,
        test.records,
        test.ground_truth,
        title=f"Desh evaluation report - system {args.system}",
    )
    Path(args.out).write_text(report)
    print(f"wrote {args.out}")
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    """``repro lint``: static-analysis gate; exit 1 on any new finding.

    With no paths, lints the installed ``repro`` package itself (the
    self-lint CI gate).  ``--update-baseline`` grandfathers the current
    findings so the gate only fails on regressions; ``--sarif`` writes
    a SARIF 2.1.0 log alongside the normal output.  ``--profile``
    joins the findings against measured ``repro trace`` artifacts:
    output ranks hottest-first with attributed milliseconds, and perf
    findings escalate (hot critical path -> error, hot -> warning,
    cold -> note); combined with ``--min-level error`` this gates CI
    on exactly the perf findings that sit under measured hot spans.
    """
    from .lint import Baseline, all_rules, get_rules
    from .lint.engine import lint_modules, load_modules

    if args.rules in ("list", "help"):
        from .lint.rules import rules_by_category

        for category, rules in rules_by_category().items():
            print(f"{category}:")
            for rule in rules:
                print(f"  {rule.id:<4} {rule.summary}")
        return 0

    paths = args.paths or [Path(__file__).parent]
    rules = (
        get_rules(r.strip() for r in args.rules.split(",") if r.strip())
        if args.rules
        else None
    )
    baseline_path: Path | None = None
    if args.baseline:
        baseline_path = Path(args.baseline)
    elif not args.no_baseline and Path("lint-baseline.json").exists():
        baseline_path = Path("lint-baseline.json")

    modules, parse_errors = load_modules(paths)

    if args.update_baseline:
        report = lint_modules(
            modules, rules=rules, parse_errors=parse_errors, jobs=args.jobs
        )
        target = baseline_path or Path("lint-baseline.json")
        Baseline.from_findings(report.findings).save(
            target, findings=report.findings
        )
        print(
            f"wrote baseline with {len(report.findings)} "
            f"grandfathered finding(s) to {target}"
        )
        return 0

    baseline = None
    if baseline_path is not None and not args.no_baseline:
        baseline = Baseline.load(baseline_path)
    report = lint_modules(
        modules,
        rules=rules,
        baseline=baseline,
        parse_errors=parse_errors,
        jobs=args.jobs,
    )

    ranked = None
    if args.profile:
        from .lint.perf import HotnessProfile, apply_profile

        hotness = HotnessProfile.load(args.profile)
        ranked = apply_profile(report.findings, modules, hotness)
        # Replace the path-ordered findings with the hotness-annotated,
        # hottest-first ranking; SARIF and --json inherit it.
        report.findings = [r.finding for r in ranked]

    effective = list(rules) if rules is not None else all_rules()
    if args.sarif:
        from .lint.sarif import write_sarif

        write_sarif(args.sarif, report, effective, root=Path.cwd())
        print(f"wrote SARIF log to {args.sarif}", file=sys.stderr)
    if args.json:
        print(json.dumps(report.to_dict(), indent=1))
    elif ranked is not None:
        for entry in ranked:
            finding = entry.finding
            level = finding.level or "warning"
            print(
                f"{level:<7} {finding.hotness_ms:9.1f}ms  "
                f"{finding.render()}"
            )
        suffix = (
            f" ({len(report.baselined)} baselined)" if report.baselined else ""
        )
        print(
            f"deshlint: {report.modules} modules, "
            f"{len(report.findings)} finding(s){suffix}, "
            f"{hotness.total_ms():.1f}ms profiled"
        )
    else:
        for finding in report.findings:
            print(finding.render())
        suffix = (
            f" ({len(report.baselined)} baselined)" if report.baselined else ""
        )
        print(
            f"deshlint: {report.modules} modules, "
            f"{len(report.findings)} finding(s){suffix}"
        )

    from .lint.perf.profile import LEVEL_ORDER
    from .lint.sarif import finding_level

    threshold = LEVEL_ORDER[args.min_level]
    category_of = {rule.id: rule.category for rule in effective}
    gating = [
        f
        for f in report.findings
        if LEVEL_ORDER[finding_level(f, category_of)] >= threshold
    ]
    return 0 if not gating else 1


def cmd_chaos(args: argparse.Namespace) -> int:
    """``repro chaos``: report metric degradation under injected faults."""
    import dataclasses

    from .resilience import FAULT_PROFILES, IngestConfig, chaos_evaluation

    if args.profile not in FAULT_PROFILES:
        names = ", ".join(sorted(FAULT_PROFILES))
        raise ReproError(f"unknown fault profile {args.profile!r} (have: {names})")
    profile = FAULT_PROFILES[args.profile]
    overrides = {}
    if args.corrupt_rate is not None:
        overrides["corrupt_rate"] = args.corrupt_rate
    if args.reorder_window is not None:
        overrides["reorder_window"] = args.reorder_window
    if overrides:
        profile = dataclasses.replace(profile, **overrides)
    ingest_config = None
    if args.max_bad_ratio is not None:
        ingest_config = IngestConfig(max_bad_ratio=args.max_bad_ratio)

    log = generate_system(args.system, seed=args.seed)
    train, test = log.split(args.train_fraction)
    model = Desh(DeshConfig(seed=args.seed)).fit(
        list(train.records), train_classifier=False, cache_dir=args.cache_dir
    )
    report = chaos_evaluation(
        model,
        list(test.records),
        test.ground_truth,
        profile,
        seed=args.chaos_seed,
        ingest_config=ingest_config,
        store=_artifact_store(args.cache_dir),
    )
    print(
        f"system {args.system} (seed {args.seed}), "
        f"profile {args.profile} (chaos seed {args.chaos_seed}):"
    )
    print(report.summary())
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """``repro serve``: run the prediction service until interrupted.

    Ctrl-C (or ``--max-seconds`` elapsing) triggers graceful shutdown:
    ingest seals, queues drain, workers stop, and — when
    ``--checkpoint-dir`` is set — an atomic resume checkpoint is
    written.  A restart with the same checkpoint dir resumes the stream
    bit-identically.
    """
    import asyncio

    from .pipeline.persist import load_model
    from .serve import ServeConfig, PredictionService, run_server

    model = load_model(args.model_dir)
    config = ServeConfig(
        num_shards=args.shards,
        queue_depth=args.queue_depth,
        deadline_seconds=args.deadline_ms / 1000.0,
        checkpoint_dir=args.checkpoint_dir,
    )
    service = PredictionService(model, config)
    try:
        health = asyncio.run(
            run_server(
                service,
                host=args.host,
                port=args.port,
                max_seconds=args.max_seconds,
                restore=not args.no_restore,
            )
        )
    except KeyboardInterrupt:
        print("interrupted; shut down", file=sys.stderr)
        return 0
    print(
        f"served {sum(s['lines_processed'] for s in health['shards'])} lines, "
        f"{health['alert_seq']} alerts, {health['restarts']} worker restarts"
    )
    return 0


def cmd_soak(args: argparse.Namespace) -> int:
    """``repro soak``: chaos-soak the service and print the report.

    Trains on the leading split of a generated system, renders the rest
    as raw lines, and drives them through a live service under the
    chosen fault profile.  Exits 1 when the soak violates the
    robustness contract (unhandled errors, lost lines, bit-identity
    break, or recovery over the SLO).
    """
    from .resilience import FAULT_PROFILES
    from .serve import RECOVERY_SLO_SECONDS, run_soak
    from .simlog.record import render_line

    if args.profile not in FAULT_PROFILES:
        # Catch a typo *before* spending minutes training the model.
        known = ", ".join(sorted(FAULT_PROFILES))
        raise ConfigError(
            f"unknown fault profile {args.profile!r} (known: {known})"
        )
    log = generate_system(args.system, seed=args.seed)
    train, test = log.split(args.train_fraction)
    model = Desh(DeshConfig(seed=args.seed)).fit(
        list(train.records), train_classifier=False, cache_dir=args.cache_dir
    )
    lines = [render_line(r) for r in test.records]
    if args.max_lines is not None:
        lines = lines[: args.max_lines]
    report = run_soak(
        model,
        lines,
        args.profile,
        seed=args.chaos_seed,
        batch_size=args.batch_size,
    )
    if args.json:
        print(json.dumps(report.as_dict(), indent=1))
    else:
        print(
            f"soak profile {report.profile} over {report.lines_sent} lines:"
        )
        print(
            f"  accepted {report.accepted}  deduped {report.deduped}  "
            f"shed-events {report.shed_events}  retries {report.retries}  "
            f"lost {report.lost}"
        )
        print(
            f"  crashes {report.crashes_injected}  stalls "
            f"{report.stalls_injected}  bursts {report.bursts_injected}  "
            f"restarts {report.worker_restarts}"
        )
        print(
            f"  max recovery {report.max_recovery_seconds * 1000:.1f} ms "
            f"(SLO {RECOVERY_SLO_SECONDS:.1f} s)  alerts {report.alerts}  "
            f"bit-identical {report.bit_identical}"
        )
    ok = (
        not report.unhandled_errors
        and report.lost == 0
        and report.workers_given_up == 0
        and report.bit_identical is not False
        and report.max_recovery_seconds <= RECOVERY_SLO_SECONDS
    )
    return 0 if ok else 1


# ----------------------------------------------------------------------
# observability wrappers
# ----------------------------------------------------------------------
def _wrapped_command(
    wrapped: Sequence[str], outer: str
) -> tuple[str, argparse.Namespace]:
    """Validate and parse the subcommand wrapped by trace/metrics."""
    wrapped = list(wrapped)
    if wrapped and wrapped[0] == "--":
        wrapped = wrapped[1:]
    if not wrapped:
        raise ConfigError(
            f"repro {outer} needs a subcommand to run, "
            f"e.g. `repro {outer} train --log sys.log --model-dir model/`"
        )
    name = wrapped[0]
    if name in ("trace", "metrics"):
        raise ConfigError(
            f"unknown subcommand for repro {outer}: {name!r} "
            "(observability commands cannot nest)"
        )
    if name not in _COMMANDS:
        known = ", ".join(
            sorted(n for n in _COMMANDS if n not in ("trace", "metrics"))
        )
        raise ConfigError(
            f"unknown subcommand for repro {outer}: {name!r} (have: {known})"
        )
    return name, build_parser().parse_args(wrapped)


def _export_path(value: "str | None", flag: str) -> "Path | None":
    """Resolve one export flag; reject paths that cannot hold a file."""
    if value is None:
        return None
    path = Path(value)
    if path.is_dir():
        raise ConfigError(f"{flag} path {path} is an existing directory")
    if path.parent != Path("") and not path.parent.is_dir():
        raise ConfigError(f"{flag} parent directory {path.parent} does not exist")
    return path


def _print_latency_summary(registry) -> None:
    """Print the phase-3 per-prediction latency beside the paper's claim."""
    hist = registry.get("phase3.prediction_ms")
    if hist is None or hist.count == 0:
        return
    print(
        "phase3.prediction_ms: "
        f"p50 {hist.quantile(0.5):.3f} ms, "
        f"p95 {hist.quantile(0.95):.3f} ms, "
        f"p99 {hist.quantile(0.99):.3f} ms "
        f"over {hist.count} predictions "
        "(paper Fig. 10: ~0.65 ms per prediction)"
    )


def cmd_trace(args: argparse.Namespace) -> int:
    """``repro trace``: run a subcommand under an enabled tracer.

    Prints the nested span tree with real durations and the phase-3
    latency summary; ``--trace-out`` additionally exports the spans as
    JSON lines and ``--metrics-out`` the metrics snapshot as JSON.
    """
    from .obs import MetricsRegistry, Tracer, activate_metrics, activate_tracer

    name, wrapped = _wrapped_command(args.wrapped, "trace")
    trace_out = _export_path(args.trace_out, "--trace-out")
    metrics_out = _export_path(args.metrics_out, "--metrics-out")
    if (
        trace_out is not None
        and metrics_out is not None
        and trace_out.resolve() == metrics_out.resolve()
    ):
        raise ConfigError(
            f"--trace-out and --metrics-out collide on {trace_out}"
        )
    tracer = Tracer()
    registry = MetricsRegistry(active=True)
    with activate_tracer(tracer), activate_metrics(registry):
        with tracer.span(f"repro.{name}"):
            code = _COMMANDS[name](wrapped)
    tree = tracer.describe(mask_durations=False)
    if tree:
        print(tree)
    _print_latency_summary(registry)
    if trace_out is not None:
        count = tracer.export_jsonl(trace_out)
        print(f"wrote {count} spans to {trace_out}", file=sys.stderr)
    if metrics_out is not None:
        metrics_out.write_text(registry.to_json())
        print(f"wrote metrics snapshot to {metrics_out}", file=sys.stderr)
    return code


def cmd_metrics(args: argparse.Namespace) -> int:
    """``repro metrics``: run a subcommand and report its metrics.

    The wrapped command runs with an *active* registry (which also turns
    on the timed instrumentation, e.g. the phase-3 latency histogram);
    the snapshot is printed as JSON or Prometheus text, or written to
    ``--out``.
    """
    from .obs import MetricsRegistry, activate_metrics

    name, wrapped = _wrapped_command(args.wrapped, "metrics")
    out = _export_path(args.out, "--out")
    registry = MetricsRegistry(active=True)
    with activate_metrics(registry):
        code = _COMMANDS[name](wrapped)
    text = (
        registry.to_json()
        if args.format == "json"
        else registry.to_prometheus()
    )
    if out is not None:
        out.write_text(text)
        print(f"wrote metrics snapshot to {out}", file=sys.stderr)
    else:
        print(text, end="" if text.endswith("\n") else "\n")
    _print_latency_summary(registry)
    return code


_COMMANDS = {
    "generate": cmd_generate,
    "train": cmd_train,
    "predict": cmd_predict,
    "pipeline": cmd_pipeline,
    "evaluate": cmd_evaluate,
    "compare": cmd_compare,
    "report": cmd_report,
    "chaos": cmd_chaos,
    "serve": cmd_serve,
    "soak": cmd_soak,
    "lint": cmd_lint,
    "trace": cmd_trace,
    "metrics": cmd_metrics,
}


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
