"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``generate``
    Write a synthetic system log (and its ground truth) to disk.
``train``
    Train a Desh model on a raw log file; persists the phase-2 regressor,
    the phrase vocabulary and the scaler parameters to a model directory.
``predict``
    Load a trained model directory and emit failure warnings for a test
    log.
``evaluate``
    End-to-end: generate (or read) a system, train on the 30% split and
    print the Table-6 metrics plus lead times for the rest.
``chaos``
    Train once, then score the test split clean *and* after seeded fault
    injection + hardened re-ingest; prints the recall/FP-rate deltas and
    the full fault/quarantine accounting.

Examples
--------
::

    python -m repro generate --system M3 --seed 7 --out m3.log.gz \
        --ground-truth m3.json
    python -m repro train --log m3.log.gz --fraction 0.3 --model-dir model/
    python -m repro predict --log m3.log.gz --model-dir model/
    python -m repro evaluate --system M4 --seed 9
    python -m repro chaos --system M1 --profile moderate --chaos-seed 3
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Sequence

from .analysis import Evaluator, lead_time_overall
from .config import DeshConfig
from .core import Desh, DeshModel, Phase3Predictor
from .core.deltas import LeadTimeScaler
from .errors import ReproError
from .io import chronological_split, read_records, save_ground_truth, write_log
from .nn.model import SequenceRegressor
from .parsing import LogParser, PhraseVocabulary
from .simlog import generate_system

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser with all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Desh (HPDC'18) reproduction: node-failure lead-time prediction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    g = sub.add_parser("generate", help="write a synthetic system log")
    g.add_argument("--system", default="M3", help="preset name (M1..M4)")
    g.add_argument("--seed", type=int, default=2018)
    g.add_argument("--out", required=True, help="log file path (.gz supported)")
    g.add_argument("--ground-truth", help="optional ground-truth JSON path")

    t = sub.add_parser("train", help="train Desh on a raw log file")
    t.add_argument("--log", required=True, help="raw training log")
    t.add_argument("--fraction", type=float, default=1.0, help="leading time fraction to use")
    t.add_argument("--model-dir", required=True, help="output directory")
    t.add_argument("--seed", type=int, default=2018)

    p = sub.add_parser("predict", help="emit warnings for a test log")
    p.add_argument("--log", required=True, help="raw test log")
    p.add_argument("--model-dir", required=True, help="trained model directory")

    e = sub.add_parser("evaluate", help="full generate/train/test evaluation")
    e.add_argument("--system", default="M3")
    e.add_argument("--seed", type=int, default=2018)
    e.add_argument("--train-fraction", type=float, default=0.3)

    r = sub.add_parser("report", help="write a markdown evaluation report")
    r.add_argument("--system", default="M3")
    r.add_argument("--seed", type=int, default=2018)
    r.add_argument("--train-fraction", type=float, default=0.3)
    r.add_argument("--out", required=True, help="markdown output path")

    c = sub.add_parser("chaos", help="measure degradation under injected faults")
    c.add_argument("--system", default="M3")
    c.add_argument("--seed", type=int, default=2018)
    c.add_argument("--train-fraction", type=float, default=0.3)
    c.add_argument(
        "--profile",
        default="moderate",
        help="fault profile name (none/mild/moderate/severe)",
    )
    c.add_argument("--chaos-seed", type=int, default=0, help="fault injector seed")
    c.add_argument(
        "--corrupt-rate",
        type=float,
        help="override the profile's line-corruption rate",
    )
    c.add_argument(
        "--reorder-window",
        type=int,
        help="override the profile's reordering window",
    )
    c.add_argument(
        "--max-bad-ratio",
        type=float,
        default=None,
        help="ingest error budget (default: IngestConfig default)",
    )
    return parser


# ----------------------------------------------------------------------
# model persistence
# ----------------------------------------------------------------------
def save_model(model: DeshModel, directory: str | Path) -> None:
    """Persist the inference-relevant parts of a trained model."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    model.phase2.regressor.save(directory / "phase2.npz")
    model.parser.vocab.save(directory / "vocab.json")
    meta = {
        "max_lead_seconds": model.phase2.scaler.max_lead_seconds,
        "vocab_size": model.phase2.scaler.vocab_size,
        "id_scale": model.phase2.scaler.id_scale,
        "num_chains": model.num_chains,
        "config_seed": model.config.seed,
    }
    (directory / "meta.json").write_text(json.dumps(meta, indent=1))


def load_predictor(
    directory: str | Path, config: DeshConfig
) -> tuple[LogParser, Phase3Predictor]:
    """Rebuild a parser + phase-3 predictor from a model directory.

    The parser is reconstructed from the persisted vocabulary so phrase
    ids match training exactly; the learned regressor weights and scaler
    parameters come from disk.
    """
    directory = Path(directory)
    regressor = SequenceRegressor.load(directory / "phase2.npz")
    meta = json.loads((directory / "meta.json").read_text())
    scaler = LeadTimeScaler(
        max_lead_seconds=float(meta["max_lead_seconds"]),
        vocab_size=int(meta["vocab_size"]),
        id_scale=float(meta["id_scale"]),
    )
    vocab = PhraseVocabulary.load(directory / "vocab.json")
    parser = LogParser.from_vocabulary(vocab)
    predictor = Phase3Predictor(
        regressor,
        scaler,
        config=config.phase3,
        episode_gap=config.phase2.max_lead_seconds,
    )
    return parser, predictor


# ----------------------------------------------------------------------
# commands
# ----------------------------------------------------------------------
def cmd_generate(args: argparse.Namespace) -> int:
    """``repro generate``: write a synthetic system log (+ ground truth)."""
    log = generate_system(args.system, seed=args.seed)
    count = write_log(args.out, log.records)
    print(f"wrote {count} records to {args.out}")
    if args.ground_truth:
        save_ground_truth(args.ground_truth, log.ground_truth)
        print(f"wrote ground truth to {args.ground_truth}")
    return 0


def cmd_train(args: argparse.Namespace) -> int:
    """``repro train``: fit Desh on a raw log and persist the model."""
    records = list(read_records(args.log))
    if not 0.0 < args.fraction <= 1.0:
        raise ReproError(f"--fraction must be in (0, 1], got {args.fraction}")
    if args.fraction < 1.0:
        records, _ = chronological_split(records, args.fraction)
    config = DeshConfig(seed=args.seed)
    model = Desh(config).fit(records, train_classifier=False)
    save_model(model, args.model_dir)
    print(
        f"trained on {len(records)} records: {model.num_phrases} phrases, "
        f"{model.num_chains} failure chains -> {args.model_dir}"
    )
    return 0


def cmd_predict(args: argparse.Namespace) -> int:
    """``repro predict``: emit failure warnings for a test log."""
    config = DeshConfig()
    parser, predictor = load_predictor(args.model_dir, config)
    records = list(read_records(args.log))
    parsed = parser.transform(records)
    sequences = [s for s in parsed.by_node().values() if s.node is not None]
    verdicts = predictor.predict_sequences(sequences)
    from .core.alerts import FailureWarning

    warnings = [
        FailureWarning.from_prediction(p) for p in predictor.predictions(verdicts)
    ]
    for w in warnings:
        print(w.message())
    print(f"{len(warnings)} warnings over {len(records)} records", file=sys.stderr)
    return 0


def cmd_evaluate(args: argparse.Namespace) -> int:
    """``repro evaluate``: end-to-end train/test with Table-6 metrics."""
    log = generate_system(args.system, seed=args.seed)
    train, test = log.split(args.train_fraction)
    model = Desh(DeshConfig(seed=args.seed)).fit(
        list(train.records), train_classifier=False
    )
    result = Evaluator(test.ground_truth).evaluate(model.score(test.records))
    m = result.metrics
    lead = lead_time_overall(result)
    print(f"system {args.system} (seed {args.seed}):")
    print(f"  recall    {m.recall:6.2f}%   precision {m.precision:6.2f}%")
    print(f"  accuracy  {m.accuracy:6.2f}%   F1        {m.f1:6.2f}%")
    print(f"  FP rate   {m.fp_rate:6.2f}%   FN rate   {m.fn_rate:6.2f}%")
    print(f"  avg lead  {lead.mean:6.1f}s over {lead.count} true positives")
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    """``repro report``: write a full markdown evaluation report."""
    from .analysis import system_report

    log = generate_system(args.system, seed=args.seed)
    train, test = log.split(args.train_fraction)
    model = Desh(DeshConfig(seed=args.seed)).fit(
        list(train.records), train_classifier=False
    )
    report = system_report(
        model,
        test.records,
        test.ground_truth,
        title=f"Desh evaluation report - system {args.system}",
    )
    Path(args.out).write_text(report)
    print(f"wrote {args.out}")
    return 0


def cmd_chaos(args: argparse.Namespace) -> int:
    """``repro chaos``: report metric degradation under injected faults."""
    import dataclasses

    from .resilience import FAULT_PROFILES, IngestConfig, chaos_evaluation

    if args.profile not in FAULT_PROFILES:
        names = ", ".join(sorted(FAULT_PROFILES))
        raise ReproError(f"unknown fault profile {args.profile!r} (have: {names})")
    profile = FAULT_PROFILES[args.profile]
    overrides = {}
    if args.corrupt_rate is not None:
        overrides["corrupt_rate"] = args.corrupt_rate
    if args.reorder_window is not None:
        overrides["reorder_window"] = args.reorder_window
    if overrides:
        profile = dataclasses.replace(profile, **overrides)
    ingest_config = None
    if args.max_bad_ratio is not None:
        ingest_config = IngestConfig(max_bad_ratio=args.max_bad_ratio)

    log = generate_system(args.system, seed=args.seed)
    train, test = log.split(args.train_fraction)
    model = Desh(DeshConfig(seed=args.seed)).fit(
        list(train.records), train_classifier=False
    )
    report = chaos_evaluation(
        model,
        list(test.records),
        test.ground_truth,
        profile,
        seed=args.chaos_seed,
        ingest_config=ingest_config,
    )
    print(
        f"system {args.system} (seed {args.seed}), "
        f"profile {args.profile} (chaos seed {args.chaos_seed}):"
    )
    print(report.summary())
    return 0


_COMMANDS = {
    "generate": cmd_generate,
    "train": cmd_train,
    "predict": cmd_predict,
    "evaluate": cmd_evaluate,
    "report": cmd_report,
    "chaos": cmd_chaos,
}


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
