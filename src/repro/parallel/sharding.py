"""Shard per-node event sequences into balanced work units.

Greedy longest-processing-time binning: sequences are sorted by length
and each is assigned to the currently lightest shard, keeping per-shard
event counts within a factor ~4/3 of optimal — good enough for the
per-node inference fan-out, where sequence lengths are heavy-tailed.
"""

from __future__ import annotations

import heapq
from typing import Sequence

from ..errors import ConfigError
from ..events import EventSequence

__all__ = ["shard_sequences"]


def shard_sequences(
    sequences: Sequence[EventSequence], num_shards: int
) -> list[list[EventSequence]]:
    """Partition sequences into *num_shards* groups of similar total size.

    Deterministic: ties break on (length, node order) so repeated runs
    shard identically.
    """
    if num_shards < 1:
        raise ConfigError(f"num_shards must be >= 1, got {num_shards}")
    shards: list[list[EventSequence]] = [[] for _ in range(num_shards)]
    if not sequences:
        return shards
    order = sorted(
        range(len(sequences)),
        key=lambda i: (-len(sequences[i]), str(sequences[i].node)),
    )
    # Min-heap of (current_load, shard_index).
    heap = [(0, i) for i in range(num_shards)]
    heapq.heapify(heap)
    for idx in order:
        load, shard = heapq.heappop(heap)
        shards[shard].append(sequences[idx])
        heapq.heappush(heap, (load + len(sequences[idx]), shard))
    return shards
