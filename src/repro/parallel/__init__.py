"""Parallel-execution helpers.

Per-node inference (phase 3) and log parsing are embarrassingly parallel
across nodes; :mod:`~repro.parallel.pool` provides ordered chunked maps
over threads (NumPy's BLAS-heavy regions release the GIL) or processes,
and :mod:`~repro.parallel.sharding` balances per-node event sequences
into even shards.
"""

from .pool import ordered_parallel_map
from .sharding import shard_sequences

__all__ = ["ordered_parallel_map", "shard_sequences"]
