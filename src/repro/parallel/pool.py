"""Ordered chunked parallel map.

A deterministic ``map`` over an executor: results come back in input
order regardless of completion order, and items are processed in chunks
to amortize task-dispatch overhead (important when the per-item work is
small, as with per-node episode scoring).
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Callable, Sequence, TypeVar

from ..errors import ConfigError, ParallelError

__all__ = ["ordered_parallel_map"]

T = TypeVar("T")
R = TypeVar("R")


def _apply_chunk(fn: Callable[[T], R], chunk: Sequence[T]) -> list[R]:
    return [fn(item) for item in chunk]


def ordered_parallel_map(
    fn: Callable[[T], R],
    items: Sequence[T],
    *,
    max_workers: int = 4,
    mode: str = "thread",
    chunk_size: int | None = None,
) -> list[R]:
    """Apply *fn* to every item, preserving input order.

    Parameters
    ----------
    fn:
        The per-item function.  For ``mode="process"`` it must be
        picklable (a module-level function).
    items:
        Input sequence.
    max_workers:
        Executor pool size.
    mode:
        ``"thread"`` (default; right for NumPy-bound work, which releases
        the GIL inside BLAS), ``"process"`` (for pure-Python CPU-bound
        work), or ``"serial"`` (no pool; useful for debugging and as the
        baseline in scaling benches).
    chunk_size:
        Items per task; defaults to an even split into ``4 * max_workers``
        chunks.
    """
    if max_workers < 1:
        raise ConfigError(f"max_workers must be >= 1, got {max_workers}")
    if mode not in ("thread", "process", "serial"):
        raise ConfigError(f"mode must be thread|process|serial, got {mode!r}")
    items = list(items)
    if not items:
        return []
    if mode == "serial" or max_workers == 1 or len(items) == 1:
        return [fn(item) for item in items]
    if chunk_size is None:
        chunk_size = max(1, len(items) // (4 * max_workers))
    elif chunk_size < 1:
        raise ConfigError(f"chunk_size must be >= 1, got {chunk_size}")
    chunks = [items[i : i + chunk_size] for i in range(0, len(items), chunk_size)]
    executor_cls = ThreadPoolExecutor if mode == "thread" else ProcessPoolExecutor
    with executor_cls(max_workers=max_workers) as pool:
        futures = [pool.submit(_apply_chunk, fn, chunk) for chunk in chunks]
        out: list[R] = []
        for i, fut in enumerate(futures):  # submission order == input order
            try:
                out.extend(fut.result())
            # deshlint: allow[R4] fn is arbitrary caller code; any chunk
            # failure must cancel the queue and re-raise as ParallelError
            except Exception as exc:
                # Don't leave queued chunks running after a failure:
                # cancel whatever has not started, then surface which
                # chunk blew up (the original exception is chained).
                for pending in futures[i + 1 :]:
                    pending.cancel()
                raise ParallelError(
                    f"chunk {i + 1}/{len(chunks)} "
                    f"(items {i * chunk_size}..{i * chunk_size + len(chunks[i]) - 1}) "
                    f"failed: {exc}"
                ) from exc
    return out
