"""N-gram language-model anomaly detector with backoff.

Represents the pre-neural sequence-mining family the paper's Background
section discusses: "N-gram models do not correlate semantically close
words since words are indivisible."  The detector estimates next-key
distributions from n-gram counts with recursive backoff to shorter
contexts, and flags an entry whose observed key is outside the top-*g*
most likely continuations — the same lifting to episode verdicts as the
DeepLog baseline.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass
from typing import Dict, Sequence

import numpy as np

from ..core.chains import Episode, segment_episodes
from ..core.phase3 import EpisodeVerdict
from ..errors import NotFittedError, TrainingError
from ..events import EventSequence

__all__ = ["NGramConfig", "NGramDetector"]


@dataclass
class NGramConfig:
    """Hyperparameters of the n-gram next-phrase baseline."""

    order: int = 3  # context length (trigram model by default)
    top_g: int = 6
    min_anomalies: int = 1


class NGramDetector:
    """Backoff n-gram next-key model with top-g anomaly detection."""

    def __init__(self, *, config: NGramConfig | None = None) -> None:
        self.config = config if config is not None else NGramConfig()
        if self.config.order < 1:
            raise TrainingError("order must be >= 1")
        if self.config.top_g < 1:
            raise TrainingError("top_g must be >= 1")
        # _tables[k] maps a length-k context tuple -> Counter of next keys.
        self._tables: Dict[int, Dict[tuple, Counter]] | None = None
        self._unigram: Counter | None = None

    # ------------------------------------------------------------------
    def fit(self, sequences: Sequence[np.ndarray]) -> "NGramDetector":
        """Count n-gram transitions over per-node phrase-id sequences."""
        order = self.config.order
        tables: Dict[int, Dict[tuple, Counter]] = {
            k: defaultdict(Counter) for k in range(1, order + 1)
        }
        unigram: Counter = Counter()
        total = 0
        for seq in sequences:
            seq = [int(v) for v in np.asarray(seq)]
            unigram.update(seq)
            total += len(seq)
            for i, key in enumerate(seq):
                for k in range(1, order + 1):
                    if i >= k:
                        tables[k][tuple(seq[i - k : i])][key] += 1
        if total == 0:
            raise TrainingError("NGramDetector received no training data")
        self._tables = {k: dict(v) for k, v in tables.items()}
        self._unigram = unigram
        return self

    # ------------------------------------------------------------------
    def top_candidates(self, context: Sequence[int]) -> list[int]:
        """Top-g next keys for *context*, backing off to shorter contexts."""
        if self._tables is None or self._unigram is None:
            raise NotFittedError("NGramDetector.fit has not run")
        g = self.config.top_g
        for k in range(min(self.config.order, len(context)), 0, -1):
            counter = self._tables[k].get(tuple(int(c) for c in context[-k:]))
            if counter:
                return [key for key, _ in counter.most_common(g)]
        return [key for key, _ in self._unigram.most_common(g)]

    def entry_anomalies(self, sequence: np.ndarray) -> np.ndarray:
        """Per-entry anomaly mask (entry outside top-g continuations)."""
        seq = [int(v) for v in np.asarray(sequence)]
        mask = np.zeros(len(seq), dtype=bool)
        for i in range(1, len(seq)):
            context = seq[max(0, i - self.config.order) : i]
            mask[i] = seq[i] not in self.top_candidates(context)
        return mask

    # ------------------------------------------------------------------
    def score_episode(self, episode: Episode) -> EpisodeVerdict:
        """Lift per-entry anomalies to an episode verdict."""
        mask = self.entry_anomalies(episode.phrase_ids())
        anomalous = np.flatnonzero(mask)
        if len(anomalous) < self.config.min_anomalies:
            return EpisodeVerdict(episode=episode, flagged=False, mse=float("inf"))
        first = int(anomalous[0])
        ts = episode.timestamps()
        return EpisodeVerdict(
            episode=episode,
            flagged=True,
            mse=0.0,
            decision_index=first,
            decision_time=float(ts[first]),
            lead_seconds=float(episode.end_time - ts[first]),
        )

    def predict_sequences(
        self,
        sequences: Sequence[EventSequence],
        *,
        gap: float = 600.0,
        min_events: int = 2,
    ) -> list[EpisodeVerdict]:
        """Score every episode of every node stream (Desh-compatible API)."""
        verdicts: list[EpisodeVerdict] = []
        for seq in sequences:
            if seq.node is None:
                continue
            for episode in segment_episodes(seq, gap=gap, min_events=min_events):
                verdicts.append(self.score_episode(episode))
        return verdicts
