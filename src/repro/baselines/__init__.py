"""Comparison baselines (Tables 10 and 11).

* :mod:`~repro.baselines.deeplog` — DeepLog-style per-entry top-g
  next-key anomaly detection (Du et al., CCS'17), the paper's closest
  related work;
* :mod:`~repro.baselines.ngram` — an n-gram language-model detector with
  backoff, representing the pre-neural sequence-mining family;
* :mod:`~repro.baselines.severity` — the severity-keyword strawman the
  paper argues against (Observation 6: severity tags alone are
  insufficient failure indicators).

All baselines share the episode-verdict interface of phase 3 so the
comparison benches can score them with the same
:class:`~repro.analysis.evaluation.Evaluator`.
"""

from .deeplog import DeepLogDetector
from .ngram import NGramDetector
from .severity import SeverityDetector

__all__ = ["DeepLogDetector", "NGramDetector", "SeverityDetector"]
