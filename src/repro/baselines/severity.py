"""Severity-keyword baseline: flag on any Error-labeled phrase.

The strawman the paper argues against.  Observation 6: "tags such as
warning or critical with a log message should not be uniquely associated
with a log event as the context of correlated events ... is indicative
of anomalies, not a single event by itself."  This detector flags every
episode containing at least ``min_error_events`` Error-labeled phrases —
it achieves high recall (every failure chain contains error phrases) but
poor precision, since near-miss sequences carry the same phrases.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..core.chains import Episode, segment_episodes
from ..core.phase3 import EpisodeVerdict
from ..errors import ConfigError
from ..events import EventSequence, Label

__all__ = ["SeverityDetector"]


@dataclass(frozen=True)
class SeverityDetector:
    """Flag any episode containing Error-labeled ("fatal severity") phrases."""

    min_error_events: int = 1

    def __post_init__(self) -> None:
        if self.min_error_events < 1:
            raise ConfigError("min_error_events must be >= 1")

    def score_episode(self, episode: Episode) -> EpisodeVerdict:
        """Flag the episode iff it contains enough Error-labeled events."""
        error_positions = [
            i for i, e in enumerate(episode.events) if e.label == Label.ERROR
        ]
        if len(error_positions) < self.min_error_events:
            return EpisodeVerdict(episode=episode, flagged=False, mse=float("inf"))
        first = error_positions[0]
        ts = episode.timestamps()
        return EpisodeVerdict(
            episode=episode,
            flagged=True,
            mse=0.0,
            decision_index=first,
            decision_time=float(ts[first]),
            lead_seconds=float(episode.end_time - ts[first]),
        )

    def predict_sequences(
        self,
        sequences: Sequence[EventSequence],
        *,
        gap: float = 600.0,
        min_events: int = 2,
    ) -> list[EpisodeVerdict]:
        """Score every episode of every node stream (Desh-compatible API)."""
        verdicts: list[EpisodeVerdict] = []
        for seq in sequences:
            if seq.node is None:
                continue
            for episode in segment_episodes(seq, gap=gap, min_events=min_events):
                verdicts.append(self.score_episode(episode))
        return verdicts
