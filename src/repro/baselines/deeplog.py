"""DeepLog-style anomaly detection baseline (Du et al., CCS 2017).

DeepLog trains a stacked LSTM over log-key sequences of *normal*
execution and flags a log entry as anomalous when the observed key is
absent from the model's top-*g* next-key predictions.  It operates at
the per-entry level, has no lead-time concept and no failure-chain
notion — the conceptual differences Table 11 enumerates.

To compare against Desh on node-failure prediction, per-entry anomalies
are lifted to episode verdicts: an episode is flagged when at least
``min_anomalies`` of its events are per-entry anomalous.  The "lead
time" of a flagged episode is measured from the first anomalous entry —
charitable to DeepLog, and still structurally different from Desh's
learned dT prediction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..core.chains import Episode, segment_episodes
from ..core.phase3 import EpisodeVerdict
from ..errors import NotFittedError, TrainingError
from ..events import EventSequence
from ..nn.data import windows_from_sequences
from ..nn.model import SequenceClassifier
from ..nn.optimizers import SGD

__all__ = ["DeepLogConfig", "DeepLogDetector"]


@dataclass
class DeepLogConfig:
    """Hyperparameters of the DeepLog-style top-g anomaly detector."""

    history: int = 5
    top_g: int = 6
    min_anomalies: int = 1
    hidden_size: int = 64
    num_layers: int = 2
    embed_dim: int = 24
    epochs: int = 6
    batch_size: int = 64
    learning_rate: float = 0.5


class DeepLogDetector:
    """Per-entry top-g next-key anomaly detector over phrase sequences."""

    def __init__(
        self,
        vocab_size: int,
        *,
        config: DeepLogConfig | None = None,
        seed: int = 0,
    ) -> None:
        if vocab_size < 2:
            raise TrainingError(f"vocab_size must be >= 2, got {vocab_size}")
        self.vocab_size = vocab_size
        self.config = config if config is not None else DeepLogConfig()
        if self.config.top_g < 1 or self.config.top_g > vocab_size:
            raise TrainingError("top_g must be in [1, vocab_size]")
        self.seed = seed
        self._model: SequenceClassifier | None = None

    # ------------------------------------------------------------------
    def fit(self, sequences: Sequence[np.ndarray]) -> "DeepLogDetector":
        """Train the next-key model on per-node phrase-id sequences."""
        cfg = self.config
        x, y = windows_from_sequences(list(sequences), cfg.history, 1)
        if len(x) == 0:
            raise TrainingError("DeepLog received no training windows")
        model = SequenceClassifier(
            self.vocab_size,
            embed_dim=cfg.embed_dim,
            hidden_size=cfg.hidden_size,
            num_layers=cfg.num_layers,
            steps=1,
            seed=self.seed,
        )
        model.fit(
            x,
            y,
            epochs=cfg.epochs,
            batch_size=cfg.batch_size,
            optimizer=SGD(cfg.learning_rate, momentum=0.9),
            rng=np.random.default_rng(self.seed + 3),
        )
        self._model = model
        return self

    # ------------------------------------------------------------------
    def entry_anomalies(self, sequence: np.ndarray) -> np.ndarray:
        """Boolean per-entry anomaly mask for one phrase-id sequence.

        Entry *i* (for ``i >= history``) is anomalous when it is absent
        from the top-g predictions given the preceding *history* keys.
        Entries with insufficient history are never anomalous.
        """
        if self._model is None:
            raise NotFittedError("DeepLogDetector.fit has not run")
        cfg = self.config
        sequence = np.asarray(sequence)
        n = len(sequence)
        mask = np.zeros(n, dtype=bool)
        if n <= cfg.history:
            return mask
        idx = np.arange(n - cfg.history)[:, None]
        windows = sequence[idx + np.arange(cfg.history)[None, :]]
        targets = sequence[cfg.history :]
        topk = self._model.predict_topk(windows, cfg.top_g)[:, 0, :]
        hits = (topk == targets[:, None]).any(axis=1)
        mask[cfg.history :] = ~hits
        return mask

    # ------------------------------------------------------------------
    def score_episode(self, episode: Episode) -> EpisodeVerdict:
        """Lift per-entry anomalies to an episode verdict."""
        mask = self.entry_anomalies(episode.phrase_ids())
        anomalous = np.flatnonzero(mask)
        flagged = len(anomalous) >= self.config.min_anomalies
        if not flagged:
            return EpisodeVerdict(episode=episode, flagged=False, mse=float("inf"))
        first = int(anomalous[0])
        ts = episode.timestamps()
        return EpisodeVerdict(
            episode=episode,
            flagged=True,
            mse=0.0,
            decision_index=first,
            decision_time=float(ts[first]),
            lead_seconds=float(episode.end_time - ts[first]),
        )

    def predict_sequences(
        self,
        sequences: Sequence[EventSequence],
        *,
        gap: float = 600.0,
        min_events: int = 2,
    ) -> list[EpisodeVerdict]:
        """Score every episode of every node stream (Desh-compatible API)."""
        verdicts: list[EpisodeVerdict] = []
        for seq in sequences:
            if seq.node is None:
                continue
            for episode in segment_episodes(seq, gap=gap, min_events=min_events):
                verdicts.append(self.score_episode(episode))
        return verdicts
