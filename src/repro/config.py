"""Configuration dataclasses for every stage of the Desh pipeline.

Defaults follow Table 5 of the paper:

========  =====================  ====================  ===  =====  ===  =========================
Phase     Input vector           Output vector         #HL  Steps  #HS  Loss, Optimizer
========  =====================  ====================  ===  =====  ===  =========================
Phase 1   (P1, P2, .. PN)        (P11, P15, .. PN)      2     3     8   SGD, categorical CE
Phase 2   (dT1, P1), (dT2, P2)   (dT11, P11), ...       2     1     5   MSE, RMSprop
Phase 3   (dT4, P4), (dT5, P5)   (dT15, P15), ...       2     1     5   MSE, RMSprop
========  =====================  ====================  ===  =====  ===  =========================

Skip-gram window sizes 8 (left) and 3 (right), and the phase-3 failure
threshold MSE <= 0.5, are also from the paper (Sections 3.1 and 3.3).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

from .errors import ConfigError

__all__ = [
    "EmbeddingConfig",
    "Phase1Config",
    "Phase2Config",
    "Phase3Config",
    "DeshConfig",
    "validate_positive",
]


def validate_positive(name: str, value: float, *, allow_zero: bool = False) -> None:
    """Raise :class:`ConfigError` unless *value* is positive (or >= 0)."""
    ok = value >= 0 if allow_zero else value > 0
    if not ok:
        bound = ">= 0" if allow_zero else "> 0"
        raise ConfigError(f"{name} must be {bound}, got {value!r}")


@dataclass(frozen=True)
class EmbeddingConfig:
    """Skip-gram word-embedding hyperparameters (Section 3.1).

    ``window_left``/``window_right`` are the number of phrases considered to
    the left and right of a target phrase — 8 and 3 in the paper.
    """

    dim: int = 32
    window_left: int = 8
    window_right: int = 3
    negatives: int = 5
    epochs: int = 3
    learning_rate: float = 0.05
    min_learning_rate: float = 1e-4
    batch_size: int = 512

    def __post_init__(self) -> None:
        for name in ("dim", "window_left", "window_right", "negatives", "epochs", "batch_size"):
            validate_positive(name, getattr(self, name))
        validate_positive("learning_rate", self.learning_rate)
        validate_positive("min_learning_rate", self.min_learning_rate)
        if self.min_learning_rate > self.learning_rate:
            raise ConfigError("min_learning_rate must not exceed learning_rate")


@dataclass(frozen=True)
class Phase1Config:
    """Phase-1 LSTM: phrase-id sequence model (Table 5 row 1).

    2 hidden layers, history size 8, 3-step prediction, SGD + categorical
    cross-entropy.
    """

    hidden_size: int = 64
    hidden_layers: int = 2
    history_size: int = 8
    prediction_steps: int = 3
    epochs: int = 80
    batch_size: int = 128
    learning_rate: float = 1.0
    momentum: float = 0.9
    grad_clip: float = 5.0

    def __post_init__(self) -> None:
        for name in (
            "hidden_size",
            "hidden_layers",
            "history_size",
            "prediction_steps",
            "epochs",
            "batch_size",
        ):
            validate_positive(name, getattr(self, name))
        validate_positive("learning_rate", self.learning_rate)
        validate_positive("momentum", self.momentum, allow_zero=True)
        validate_positive("grad_clip", self.grad_clip)


@dataclass(frozen=True)
class Phase2Config:
    """Phase-2 LSTM: (dT, phrase) regressor on failure chains (Table 5 row 2).

    2 hidden layers, history size 5, 1-step prediction, MSE + RMSprop.
    """

    hidden_size: int = 64
    hidden_layers: int = 2
    history_size: int = 5
    prediction_steps: int = 1
    epochs: int = 400
    batch_size: int = 32
    learning_rate: float = 0.01
    rho: float = 0.9
    grad_clip: float = 5.0
    # Normalization cap for dT values (seconds); dT is scaled into [0, 1]
    # by this horizon before entering the network.
    max_lead_seconds: float = 600.0
    # Noise augmentation: each chain contributes `augment_copies` extra
    # window sets in which every input row is replaced, with probability
    # `corrupt_prob`, by a random (dT, phrase) vector.  Real chains are
    # interspersed with unrelated anomalous events; training on corrupted
    # copies teaches the LSTM to ignore them ("training is more robust
    # with noise" — Section 3.1).
    augment_copies: int = 2
    corrupt_prob: float = 0.15

    def __post_init__(self) -> None:
        for name in (
            "hidden_size",
            "hidden_layers",
            "history_size",
            "prediction_steps",
            "epochs",
            "batch_size",
        ):
            validate_positive(name, getattr(self, name))
        validate_positive("learning_rate", self.learning_rate)
        validate_positive("grad_clip", self.grad_clip)
        validate_positive("max_lead_seconds", self.max_lead_seconds)
        validate_positive("augment_copies", self.augment_copies, allow_zero=True)
        if not 0.0 < self.rho < 1.0:
            raise ConfigError(f"rho must be in (0, 1), got {self.rho!r}")
        if not 0.0 <= self.corrupt_prob < 1.0:
            raise ConfigError(
                f"corrupt_prob must be in [0, 1), got {self.corrupt_prob!r}"
            )


@dataclass(frozen=True)
class Phase3Config:
    """Phase-3 inference parameters (Section 3.3).

    ``mse_threshold`` — flag a failure when the match MSE against trained
    failure chains is at or below this value.  The paper uses 0.5 on its
    Cray data; the same empirical calibration procedure (pick the value
    separating trained-chain matches from "quite dissimilar" sequences)
    lands at 2.0 on the synthetic substrate, whose chain timing is
    noisier relative to its lead times.
    ``flag_position`` — the minimum number of anomalous events that must
    precede a flag; smaller values flag earlier, trading longer lead
    times for more false positives (the Figure 8 sensitivity knob).
    ``max_suffix_skip`` — how many leading episode events scoring may
    skip, so unrelated ambient anomalies swept into an episode's head do
    not mask a chain behind them.
    ``confirmation_windows`` — how many of an episode's windows must
    match trained chains (MSE at or below threshold) before the episode
    is flagged.  The flag's decision point — and hence the reported lead
    time — is the *first* matching window; requiring a second match
    suppresses single-event coincidences without shortening lead times.
    This is the sequence-level anomaly rule that distinguishes Desh from
    DeepLog's per-entry detection (Section 4.5).
    ``scoring_batch`` — ceiling on windows per LSTM call in the batched
    scoring path; larger flushes are chunked to bound the working set
    (chunking never changes scores — chunk boundaries avoid single-row
    GEMMs, so rows round identically regardless of chunk layout).
    """

    mse_threshold: float = 2.0
    history_size: int = 5
    flag_position: int = 0
    min_chain_events: int = 2
    max_suffix_skip: int = 3
    confirmation_windows: int = 2
    scoring_batch: int = 256

    def __post_init__(self) -> None:
        validate_positive("mse_threshold", self.mse_threshold)
        validate_positive("history_size", self.history_size)
        validate_positive("flag_position", self.flag_position, allow_zero=True)
        validate_positive("min_chain_events", self.min_chain_events)
        validate_positive("max_suffix_skip", self.max_suffix_skip, allow_zero=True)
        validate_positive("confirmation_windows", self.confirmation_windows)
        if self.scoring_batch < 2:
            raise ConfigError(
                f"scoring_batch must be >= 2, got {self.scoring_batch}"
            )


@dataclass(frozen=True)
class DeshConfig:
    """Top-level configuration bundling all pipeline stages.

    ``train_fraction`` follows the paper's 30/70 chronological split
    (Section 4: "30% of the data is used for training").

    ``model`` selects the model-zoo backbone family used by the phase-1
    classifier and the phase-2/3 regressor (``lstm`` — the paper's
    architecture — or ``tcn``/``attention``); ``model_params`` carries
    family-specific hyperparameter overrides, validated against the
    family's registered schema.
    """

    embedding: EmbeddingConfig = field(default_factory=EmbeddingConfig)
    phase1: Phase1Config = field(default_factory=Phase1Config)
    phase2: Phase2Config = field(default_factory=Phase2Config)
    phase3: Phase3Config = field(default_factory=Phase3Config)
    train_fraction: float = 0.30
    seed: int = 2018
    model: str = "lstm"
    model_params: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not 0.0 < self.train_fraction < 1.0:
            raise ConfigError(
                f"train_fraction must be in (0, 1), got {self.train_fraction!r}"
            )
        # Normalize to a plain dict so to_dict()/fingerprints serialize.
        object.__setattr__(self, "model_params", dict(self.model_params))
        # Imported lazily: repro.nn pulls in the full NumPy substrate,
        # which configuration-only callers should not pay for at import.
        from .nn.registry import get_model

        get_model(self.model).resolve_params(self.model_params)

    def replace(self, **kwargs: object) -> "DeshConfig":
        """Return a copy with the given top-level fields replaced."""
        return dataclasses.replace(self, **kwargs)  # type: ignore[arg-type]

    # ------------------------------------------------------------------
    # serialization (pipeline fingerprints + full-model persistence)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-serializable payload (inverse of :meth:`from_dict`).

        The nested phase configs serialize to plain dicts, so the result
        is stable input for both config files and cache fingerprints.
        """
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "DeshConfig":
        """Rebuild a :class:`DeshConfig` from a :meth:`to_dict` payload."""
        try:
            return cls(
                embedding=EmbeddingConfig(**data["embedding"]),
                phase1=Phase1Config(**data["phase1"]),
                phase2=Phase2Config(**data["phase2"]),
                phase3=Phase3Config(**data["phase3"]),
                train_fraction=data["train_fraction"],
                seed=data["seed"],
                model=data.get("model", "lstm"),
                model_params=data.get("model_params", {}),
            )
        except (KeyError, TypeError) as exc:
            raise ConfigError(f"malformed DeshConfig payload: {exc}") from exc
