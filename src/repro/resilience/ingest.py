"""Hardened ingest front-end: quarantine, dedup, bounded re-sorting.

Production log feeds contain exactly the faults :mod:`.chaos` models.
:class:`HardenedIngestor` converts a hostile raw-line stream into a
clean :class:`~repro.simlog.record.LogRecord` stream with *bounded,
measured* degradation instead of crashes:

* unparseable lines are **quarantined** into a capped dead-letter
  buffer — the pipeline only raises :class:`~repro.errors.IngestError`
  when the bad-line ratio exceeds a configurable error budget (a feed
  that is mostly garbage is an operational incident, not noise);
* exact duplicates within a sliding window are **deduplicated**
  (syslog relays retransmit);
* mildly out-of-order lines are **re-sorted** by a bounded min-heap on
  the record timestamp, restoring chronological order as long as the
  displacement stays within the heap window.

Every line is accounted for: ``stats.records_out + stats.quarantined +
stats.duplicates_dropped + stats.blank_skipped == stats.lines_seen``
holds at all times, which the chaos acceptance test asserts.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass, field, fields
from pathlib import Path
from typing import Iterable, Iterator, Optional

from ..errors import ConfigError, IngestError, ParseError
from ..obs import metrics_registry
from ..simlog.record import LogRecord, parse_line

__all__ = ["IngestConfig", "IngestStats", "DeadLetter", "HardenedIngestor"]

# Dead-letter lines are clipped so a single multi-megabyte garbage line
# cannot balloon the quarantine buffer.
_DEAD_LETTER_CLIP = 240


@dataclass(frozen=True)
class IngestConfig:
    """Tuning knobs of the hardened ingest front-end.

    Attributes
    ----------
    max_bad_ratio:
        Error budget: the tolerated fraction of quarantined lines.  Once
        at least ``min_lines_for_budget`` lines have been seen, a ratio
        above this raises :class:`~repro.errors.IngestError`.
    min_lines_for_budget:
        Grace period (in lines) before the budget is enforced, so a bad
        first line of a short stream does not trip a 100% ratio.
    dead_letter_cap:
        Maximum number of quarantined lines kept for inspection; beyond
        the cap only the counter advances (lines are still dropped).
    dedup_window:
        Number of recent lines checked for exact duplicates (0 disables
        deduplication).
    reorder_window:
        Size of the timestamp re-sorting heap (0 disables re-sorting).
        Records displaced further than the window stay out of order —
        the downstream parser's global sort remains the backstop.
    """

    max_bad_ratio: float = 0.10
    min_lines_for_budget: int = 100
    dead_letter_cap: int = 1000
    dedup_window: int = 512
    reorder_window: int = 64

    def __post_init__(self) -> None:
        if not 0.0 <= self.max_bad_ratio <= 1.0:
            raise ConfigError(
                f"max_bad_ratio must be in [0, 1], got {self.max_bad_ratio!r}"
            )
        if self.min_lines_for_budget < 1:
            raise ConfigError(
                "min_lines_for_budget must be >= 1, got "
                f"{self.min_lines_for_budget}"
            )
        for name in ("dead_letter_cap", "dedup_window", "reorder_window"):
            value = getattr(self, name)
            if value < 0:
                raise ConfigError(f"{name} must be >= 0, got {value}")


@dataclass(frozen=True)
class DeadLetter:
    """One quarantined line: where it was, what it was, why it failed."""

    lineno: int
    line: str
    reason: str


@dataclass
class IngestStats:
    """Counters maintained by :class:`HardenedIngestor`.

    The conservation invariant ``lines_seen == records_out + quarantined
    + duplicates_dropped + blank_skipped + in_flight`` holds at every
    point of the stream (``in_flight`` being records still buffered in
    the re-sorting heap; it is zero once the stream is exhausted).
    """

    lines_seen: int = 0
    records_out: int = 0
    quarantined: int = 0
    duplicates_dropped: int = 0
    blank_skipped: int = 0
    resorted: int = 0

    @property
    def bad_ratio(self) -> float:
        """Fraction of seen lines that were quarantined."""
        if self.lines_seen == 0:
            return 0.0
        return self.quarantined / self.lines_seen

    def as_dict(self) -> dict[str, float]:
        """All counters plus the bad ratio, as a plain dict."""
        out: dict[str, float] = {
            f.name: getattr(self, f.name) for f in fields(self)
        }
        out["bad_ratio"] = self.bad_ratio
        return out


class HardenedIngestor:
    """Parse a hostile raw-line stream into clean, ordered records.

    One ingestor instance carries the stats and dead-letter buffer of
    one feed; reuse across feeds accumulates counters (call
    :meth:`reset` between feeds to start fresh).
    """

    def __init__(self, config: IngestConfig | None = None) -> None:
        self.config = config if config is not None else IngestConfig()
        self.stats = IngestStats()
        self.dead_letters: list[DeadLetter] = []
        self._recent: deque[str] = deque(maxlen=max(1, self.config.dedup_window))
        self._recent_set: dict[str, int] = {}

    # ------------------------------------------------------------------
    # single-line path (used by the streaming monitor)
    # ------------------------------------------------------------------
    def accept_line(self, line: str) -> Optional[LogRecord]:
        """Parse one line; quarantine/dedup without re-sorting.

        Returns the parsed record, or ``None`` when the line was blank,
        a duplicate, or quarantined.  Raises
        :class:`~repro.errors.IngestError` once the error budget is
        exhausted.
        """
        self.stats.lines_seen += 1
        if not line.strip():
            self.stats.blank_skipped += 1
            return None
        if self.config.dedup_window > 0 and self._is_duplicate(line):
            self.stats.duplicates_dropped += 1
            metrics_registry().counter("ingest.duplicates").inc()
            return None
        try:
            record = parse_line(line)
        except ParseError as exc:
            self._quarantine(line, str(exc))
            return None
        self.stats.records_out += 1
        return record

    def _is_duplicate(self, line: str) -> bool:
        count = self._recent_set.get(line, 0)
        if len(self._recent) == self._recent.maxlen:
            oldest = self._recent[0]
            remaining = self._recent_set.get(oldest, 0) - 1
            if remaining <= 0:
                self._recent_set.pop(oldest, None)
            else:
                self._recent_set[oldest] = remaining
        self._recent.append(line)
        self._recent_set[line] = count + 1
        return count > 0

    def _quarantine(self, line: str, reason: str) -> None:
        self.stats.quarantined += 1
        metrics_registry().counter("ingest.quarantined").inc()
        if len(self.dead_letters) < self.config.dead_letter_cap:
            self.dead_letters.append(
                DeadLetter(
                    lineno=self.stats.lines_seen,
                    line=line[:_DEAD_LETTER_CLIP],
                    reason=reason[:_DEAD_LETTER_CLIP],
                )
            )
        if (
            self.stats.lines_seen >= self.config.min_lines_for_budget
            and self.stats.bad_ratio > self.config.max_bad_ratio
        ):
            raise IngestError(
                f"bad-line ratio {self.stats.bad_ratio:.1%} exceeds the "
                f"{self.config.max_bad_ratio:.1%} error budget after "
                f"{self.stats.lines_seen} lines "
                f"({self.stats.quarantined} quarantined)"
            )

    # ------------------------------------------------------------------
    # stream path
    # ------------------------------------------------------------------
    def ingest_lines(self, lines: Iterable[str]) -> Iterator[LogRecord]:
        """Yield clean records for *lines*, re-sorted within the window.

        The re-sorting heap holds up to ``reorder_window`` records; the
        smallest timestamp is released whenever the heap is full, so
        records displaced by at most the window come out in true
        chronological order.
        """
        window = self.config.reorder_window
        if window <= 1:
            for line in lines:
                record = self.accept_line(line)
                if record is not None:
                    yield record
            return
        heap: list[tuple[float, int, LogRecord]] = []
        arrival = 0
        emitted = 0
        for line in lines:
            record = self.accept_line(line)
            if record is None:
                continue
            heapq.heappush(heap, (record.timestamp, arrival, record))
            arrival += 1
            if len(heap) >= window:
                yield self._pop_in_order(heap, emitted)
                emitted += 1
        while heap:
            yield self._pop_in_order(heap, emitted)
            emitted += 1

    def _pop_in_order(
        self, heap: list[tuple[float, int, LogRecord]], emitted: int
    ) -> LogRecord:
        _, order, record = heapq.heappop(heap)
        if order != emitted:  # the heap actually moved this record
            self.stats.resorted += 1
        return record

    def ingest_path(self, path: str | Path) -> Iterator[LogRecord]:
        """Stream clean records from a (possibly gzipped) log file."""
        from ..io.logfile import iter_lines

        return self.ingest_lines(iter_lines(path))

    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Clear stats, dead letters and dedup state for a new feed."""
        self.stats = IngestStats()
        self.dead_letters.clear()
        self._recent.clear()
        self._recent_set.clear()

    # ------------------------------------------------------------------
    # checkpointable state (service graceful-shutdown / resume path)
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Stats, dead letters and the dedup window, JSON-serializable.

        The dedup window is part of the state on purpose: resuming a
        feed without it would stop deduplicating lines that straddle
        the restart, breaking bit-identical resume.
        """
        return {
            "version": 1,
            "stats": {
                f.name: getattr(self.stats, f.name)
                for f in fields(IngestStats)
            },
            "recent": list(self._recent),
            "dead_letters": [
                [d.lineno, d.line, d.reason] for d in self.dead_letters
            ],
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot in place."""
        version = state.get("version")
        if version != 1:
            raise ConfigError(
                f"unsupported ingest state version {version!r} (expected 1)"
            )
        self.reset()
        for f in fields(IngestStats):
            setattr(self.stats, f.name, int(state["stats"][f.name]))
        for line in state["recent"]:
            self._recent.append(line)
            self._recent_set[line] = self._recent_set.get(line, 0) + 1
        self.dead_letters.extend(
            DeadLetter(lineno=int(n), line=str(line), reason=str(reason))
            for n, line, reason in state["dead_letters"]
        )
