"""Atomic, checksummed, epoch-granular training checkpoints.

Multi-hour LSTM training runs die mid-epoch — node reboots, OOM kills,
preemption.  :class:`CheckpointManager` makes ``fit`` restartable with
*bit-identical* results:

* **atomic**: the payload is written to a temp file, ``fsync``\\ ed and
  ``os.replace``\\ d into place, then the manifest is updated the same
  way — a crash at any instant leaves either the old or the new
  checkpoint, never a torn file;
* **checksummed**: each payload's SHA-256 is recorded in the manifest
  and verified on load; silent disk corruption is detected and the
  loader falls back to the previous intact checkpoint;
* **complete**: a checkpoint captures the model parameters, the full
  optimizer slot state (momentum / RMS accumulators / Adam moments),
  the loss history *and* the exact NumPy bit-generator state, so a
  resumed run replays the remaining epochs with the same batch
  shuffles and lands on the same weights as an uninterrupted run.

The format is a single ``.npz`` per checkpoint step plus a JSON
manifest; :func:`pack_fit_state` / :func:`restore_fit_state` define the
array layout shared by the model- and trainer-level resume paths.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
from pathlib import Path
from typing import Mapping, Optional

import numpy as np

from ..errors import CheckpointError, ConfigError
from ..obs import current_tracer, metrics_registry

__all__ = [
    "CheckpointManager",
    "atomic_write_bytes",
    "pack_fit_state",
    "restore_fit_state",
]

_MANIFEST = "MANIFEST.json"
_PARAM_PREFIX = "param::"
_OPT_PREFIX = "opt::"


def atomic_write_bytes(path: Path, payload: bytes) -> None:
    """Write *payload* to *path* via tmp + fsync + rename (crash-safe).

    Shared durability primitive: checkpoints and the pipeline artifact
    store both write through it so a crash at any instant leaves either
    the old file or the new one, never a torn write.
    """
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as fh:
        fh.write(payload)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)
    # Make the rename itself durable.
    dir_fd = os.open(path.parent, os.O_RDONLY)
    try:
        os.fsync(dir_fd)
    finally:
        os.close(dir_fd)


#: Backwards-compatible alias (pre-pipeline internal name).
_atomic_write_bytes = atomic_write_bytes


class CheckpointManager:
    """Save/load checksummed training checkpoints in one directory.

    Parameters
    ----------
    directory:
        Where checkpoints live; created on first save.
    keep:
        Number of most-recent checkpoints retained (older payloads are
        pruned after each save).  Keeping more than one is what makes
        checksum-failure fallback possible.
    """

    def __init__(self, directory: str | Path, *, keep: int = 2) -> None:
        if keep < 1:
            raise ConfigError(f"keep must be >= 1, got {keep}")
        self.directory = Path(directory)
        self.keep = keep

    # ------------------------------------------------------------------
    def _manifest_path(self) -> Path:
        return self.directory / _MANIFEST

    def _read_manifest(self) -> list[dict]:
        path = self._manifest_path()
        if not path.exists():
            return []
        try:
            data = json.loads(path.read_text())
            entries = data["checkpoints"]
        except (OSError, ValueError, KeyError) as exc:
            raise CheckpointError(f"unreadable checkpoint manifest {path}") from exc
        return entries

    def _write_manifest(self, entries: list[dict]) -> None:
        payload = json.dumps({"checkpoints": entries}, indent=1).encode()
        _atomic_write_bytes(self._manifest_path(), payload)

    # ------------------------------------------------------------------
    def save(
        self,
        step: int,
        arrays: Mapping[str, np.ndarray],
        meta: Mapping[str, object],
    ) -> Path:
        """Persist one checkpoint; returns the payload path.

        ``step`` is the number of completed epochs; ``arrays`` holds
        every tensor to restore and ``meta`` any JSON-serializable
        scalars (epoch counters, rng state, histories).
        """
        if step < 0:
            raise CheckpointError(f"step must be >= 0, got {step}")
        with current_tracer().span(
            "checkpoint.save", step=step, arrays=len(arrays)
        ):
            return self._save(step, arrays, meta)

    def _save(
        self,
        step: int,
        arrays: Mapping[str, np.ndarray],
        meta: Mapping[str, object],
    ) -> Path:
        """The body of :meth:`save` (wrapped in its tracing span)."""
        self.directory.mkdir(parents=True, exist_ok=True)
        buf = io.BytesIO()
        np.savez(buf, __meta__=json.dumps(dict(meta)), **dict(arrays))
        payload = buf.getvalue()
        digest = hashlib.sha256(payload).hexdigest()
        name = f"ckpt-{step:08d}.npz"
        _atomic_write_bytes(self.directory / name, payload)
        entries = [e for e in self._read_manifest() if e["step"] != step]
        entries.append({"step": step, "file": name, "sha256": digest})
        entries.sort(key=lambda e: e["step"])
        pruned, entries = entries[: -self.keep], entries[-self.keep :]
        self._write_manifest(entries)
        for entry in pruned:
            try:
                (self.directory / entry["file"]).unlink(missing_ok=True)
            except OSError:  # pragma: no cover - best-effort cleanup
                pass
        self.gc()
        metrics_registry().counter("checkpoint.saves").inc()
        return self.directory / name

    def gc(self) -> list[str]:
        """Prune files the manifest does not reference; returns their names.

        A long-running service checkpoints indefinitely; crashes between
        the payload write and the manifest update (or mid-``tmp`` write)
        leave orphaned ``ckpt-*.npz`` payloads and stale ``*.tmp`` files
        behind.  Retention (``keep``) only unlinks manifest-listed
        payloads, so without GC the directory grows without bound.  GC
        runs after every save and is atomic in the only sense that
        matters: it removes nothing the manifest references, so a crash
        mid-GC leaves every live checkpoint loadable.
        """
        if not self.directory.is_dir():
            return []
        referenced = {str(e["file"]) for e in self._read_manifest()}
        removed: list[str] = []
        for path in sorted(self.directory.iterdir()):
            name = path.name
            if name == _MANIFEST or name in referenced:
                continue
            is_orphan_payload = name.startswith("ckpt-") and name.endswith(
                ".npz"
            )
            is_stale_tmp = name.endswith(".tmp")
            if not (is_orphan_payload or is_stale_tmp):
                continue
            try:
                path.unlink()
            except OSError:  # pragma: no cover - best-effort cleanup
                continue
            removed.append(name)
        if removed:
            metrics_registry().counter("checkpoint.gc_removed").inc(
                len(removed)
            )
        return removed

    # ------------------------------------------------------------------
    def steps(self) -> list[int]:
        """Steps recorded in the manifest, oldest first."""
        return [int(e["step"]) for e in self._read_manifest()]

    def load_latest(
        self,
    ) -> Optional[tuple[int, dict[str, np.ndarray], dict]]:
        """Load the newest intact checkpoint.

        Returns ``(step, arrays, meta)``, or ``None`` when no checkpoint
        exists yet.  A checkpoint whose payload is missing or fails its
        checksum is skipped in favor of the previous one; if every
        recorded checkpoint is corrupt, :class:`CheckpointError` is
        raised (resuming silently from nothing would discard work).
        """
        entries = self._read_manifest()
        if not entries:
            return None
        failures: list[str] = []
        with current_tracer().span("checkpoint.load") as span:
            for entry in reversed(entries):
                try:
                    loaded = self._load_entry(entry)
                except CheckpointError as exc:
                    failures.append(str(exc))
                    continue
                span.set(step=loaded[0], skipped=len(failures))
                metrics_registry().counter("checkpoint.restores").inc()
                return loaded
        raise CheckpointError(
            "all checkpoints failed verification: " + "; ".join(failures)
        )

    def _load_entry(self, entry: dict) -> tuple[int, dict[str, np.ndarray], dict]:
        path = self.directory / entry["file"]
        try:
            payload = path.read_bytes()
        except OSError as exc:
            raise CheckpointError(f"missing checkpoint payload {path}") from exc
        digest = hashlib.sha256(payload).hexdigest()
        if digest != entry["sha256"]:
            raise CheckpointError(
                f"checksum mismatch for {path}: "
                f"expected {entry['sha256'][:12]}.., got {digest[:12]}.."
            )
        try:
            data = np.load(io.BytesIO(payload), allow_pickle=False)
            meta = json.loads(str(data["__meta__"]))
            arrays = {k: data[k] for k in data.files if k != "__meta__"}
        except (OSError, KeyError, ValueError) as exc:
            raise CheckpointError(f"unreadable checkpoint payload {path}") from exc
        return int(entry["step"]), arrays, meta


# ----------------------------------------------------------------------
# fit-state packing shared by nn.model and nn.trainer resume paths
# ----------------------------------------------------------------------
def pack_fit_state(
    params: Mapping[str, np.ndarray],
    optimizer,
    rng: np.random.Generator | None,
    *,
    epoch: int,
    extra_meta: Mapping[str, object] | None = None,
) -> tuple[dict[str, np.ndarray], dict]:
    """Bundle model params + optimizer slots + rng state for saving.

    Returns the ``(arrays, meta)`` pair expected by
    :meth:`CheckpointManager.save`.
    """
    arrays = {_PARAM_PREFIX + k: v for k, v in params.items()}
    opt_arrays, opt_meta = optimizer.state_dict()
    arrays.update({_OPT_PREFIX + k: v for k, v in opt_arrays.items()})
    meta: dict[str, object] = {"epoch": int(epoch), "optimizer": opt_meta}
    if rng is not None:
        meta["rng_state"] = rng.bit_generator.state
    if extra_meta:
        meta.update(extra_meta)
    return arrays, meta


def restore_fit_state(
    arrays: Mapping[str, np.ndarray],
    meta: Mapping[str, object],
    params: Mapping[str, np.ndarray],
    optimizer,
    rng: np.random.Generator | None,
) -> int:
    """Inverse of :func:`pack_fit_state`; returns the completed epoch.

    Model parameters are restored in place (the arrays in *params* are
    live views into the layers), the optimizer's slot state and
    hyper-state are reloaded, and — when present — the generator is
    rewound to the exact saved bit-generator state so subsequent batch
    shuffles replay identically.
    """
    for key, arr in params.items():
        stored = arrays.get(_PARAM_PREFIX + key)
        if stored is None:
            raise CheckpointError(f"checkpoint missing parameter {key!r}")
        if stored.shape != arr.shape:
            raise CheckpointError(
                f"checkpoint shape mismatch for {key!r}: "
                f"{stored.shape} vs {arr.shape}"
            )
        arr[...] = stored
    opt_arrays = {
        k[len(_OPT_PREFIX) :]: v
        for k, v in arrays.items()
        if k.startswith(_OPT_PREFIX)
    }
    optimizer.load_state_dict(opt_arrays, dict(meta.get("optimizer", {})))
    state = meta.get("rng_state")
    if rng is not None and state is not None:
        rng.bit_generator.state = state
    return int(meta["epoch"])
