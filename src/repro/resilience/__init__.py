"""Chaos hardening: fault injection, quarantining ingest, checkpoints.

Desh's value is operational — warning *before* a node dies — but real
syslog feeds arrive corrupted, truncated, duplicated and out of order,
and multi-hour training runs die mid-epoch.  This package makes the
pipeline survive hostile inputs and interruptions with *measured,
bounded* degradation:

* :mod:`~repro.resilience.chaos` — a seeded, deterministic fault
  injector over raw line streams (corruption, truncation, duplication,
  bounded reordering, clock skew, chunk drops, garbage interleaving);
* :mod:`~repro.resilience.ingest` — a hardened ingest front-end with a
  capped dead-letter quarantine, an error budget, sliding-window
  deduplication and a bounded re-sorting heap;
* :mod:`~repro.resilience.checkpoint` — atomic, checksummed,
  epoch-granular checkpoint/resume for both LSTM fits, restoring to
  bit-identical weights;
* :mod:`~repro.resilience.harness` — the clean-vs-chaos evaluation
  harness behind ``repro chaos`` and the degradation benchmarks.
"""

from .chaos import (
    FAULT_PROFILES,
    ChaosInjector,
    ChaosStats,
    FaultProfile,
    ServiceFaults,
)
from .checkpoint import CheckpointManager, pack_fit_state, restore_fit_state
from .harness import ChaosReport, chaos_evaluation
from .ingest import DeadLetter, HardenedIngestor, IngestConfig, IngestStats

__all__ = [
    "FAULT_PROFILES",
    "ChaosInjector",
    "ChaosStats",
    "FaultProfile",
    "ServiceFaults",
    "CheckpointManager",
    "pack_fit_state",
    "restore_fit_state",
    "ChaosReport",
    "chaos_evaluation",
    "DeadLetter",
    "HardenedIngestor",
    "IngestConfig",
    "IngestStats",
]
