"""Seeded, deterministic fault injection for log-line streams.

Real Cray syslog feeds do not arrive clean: forwarding daemons corrupt
and truncate lines, retransmissions duplicate them, multi-path relays
deliver them out of order, whole chunks vanish when a relay restarts,
and unrelated binary garbage gets interleaved.  :class:`ChaosInjector`
reproduces all of these fault modes *deterministically* — the same
profile and seed always yield the same faulted stream — so the
pipeline's degradation under hostile input can be measured and asserted
in tests rather than discovered in production.

The injector operates on raw text lines (the lowest common denominator:
everything downstream, including the hardened ingest front-end, consumes
lines) and keeps full per-fault counters so a chaos evaluation can
account for every byte it damaged.
"""

from __future__ import annotations

import datetime as _dt
import re
import string
from dataclasses import dataclass, field, fields
from typing import Iterable, Iterator

import numpy as np

from ..errors import ConfigError
from ..rng import derive_seed
from ..simlog.record import LogRecord, render_line

__all__ = [
    "FaultProfile",
    "ChaosStats",
    "ChaosInjector",
    "ServiceFaults",
    "FAULT_PROFILES",
]

_TS_RE = re.compile(r"^\d{4}-\d{2}-\d{2}T\d{2}:\d{2}:\d{2}\.\d{6}")
_TS_FMT = "%Y-%m-%dT%H:%M:%S.%f"

# Printable noise used for corruption and garbage lines; excludes newline
# so injected lines stay single lines.
_NOISE_CHARS = string.ascii_letters + string.digits + string.punctuation + " "


@dataclass(frozen=True)
class FaultProfile:
    """Rates and bounds of one fault model.

    All ``*_rate`` fields are independent per-line probabilities in
    ``[0, 1]``.  ``reorder_window`` bounds how far a line may be
    displaced from its original position (0 disables reordering);
    ``clock_skew_seconds`` is the maximum absolute timestamp perturbation
    applied to ``skew_rate`` of the lines; ``drop_chunk`` is the length
    of the run of consecutive lines removed when a drop fires.

    Attributes
    ----------
    corrupt_rate:
        Probability a line has a random span of characters overwritten
        with printable noise.
    truncate_rate:
        Probability a line is cut off mid-line at a random column.
    duplicate_rate:
        Probability a line is emitted twice back to back.
    drop_rate:
        Probability a run of ``drop_chunk`` consecutive lines (starting
        at this one) is silently discarded.
    garbage_rate:
        Probability a random garbage line is interleaved before this one.
    skew_rate:
        Probability a line's timestamp is shifted by up to
        ``clock_skew_seconds`` in either direction.
    reorder_window:
        Size of the shuffle buffer; each emitted line is drawn randomly
        from the buffered window, bounding displacement to the window.
    clock_skew_seconds:
        Maximum absolute clock skew applied by ``skew_rate`` faults.
    drop_chunk:
        Number of consecutive lines removed per drop fault.
    crash_rate:
        *Service fault*: per-work-item probability that a shard worker
        crash is injected mid-feed (the supervisor must restart it).
    stall_rate:
        *Service fault*: per-work-item probability of a slow-consumer
        stall of ``stall_seconds`` before the item is processed.
    stall_seconds:
        Duration of one injected consumer stall.
    burst_rate:
        *Service fault*: per-batch probability the ingest driver sends
        an oversized burst (``burst_factor`` merged batches at once).
    burst_factor:
        Batch-size multiplier applied when a burst fires.
    """

    corrupt_rate: float = 0.0
    truncate_rate: float = 0.0
    duplicate_rate: float = 0.0
    drop_rate: float = 0.0
    garbage_rate: float = 0.0
    skew_rate: float = 0.0
    reorder_window: int = 0
    clock_skew_seconds: float = 0.0
    drop_chunk: int = 3
    crash_rate: float = 0.0
    stall_rate: float = 0.0
    stall_seconds: float = 0.0
    burst_rate: float = 0.0
    burst_factor: int = 1

    def __post_init__(self) -> None:
        for f in fields(self):
            if f.name.endswith("_rate"):
                value = getattr(self, f.name)
                if not 0.0 <= value <= 1.0:
                    raise ConfigError(
                        f"{f.name} must be in [0, 1], got {value!r}"
                    )
        if self.reorder_window < 0:
            raise ConfigError(
                f"reorder_window must be >= 0, got {self.reorder_window}"
            )
        if self.clock_skew_seconds < 0:
            raise ConfigError(
                f"clock_skew_seconds must be >= 0, got {self.clock_skew_seconds}"
            )
        if self.drop_chunk < 1:
            raise ConfigError(f"drop_chunk must be >= 1, got {self.drop_chunk}")
        if self.stall_seconds < 0:
            raise ConfigError(
                f"stall_seconds must be >= 0, got {self.stall_seconds}"
            )
        if self.burst_factor < 1:
            raise ConfigError(
                f"burst_factor must be >= 1, got {self.burst_factor}"
            )

    def is_null(self) -> bool:
        """True when the profile injects no faults at all."""
        return (
            self.corrupt_rate == 0.0
            and self.truncate_rate == 0.0
            and self.duplicate_rate == 0.0
            and self.drop_rate == 0.0
            and self.garbage_rate == 0.0
            and self.skew_rate == 0.0
            and self.reorder_window == 0
            and self.crash_rate == 0.0
            and self.stall_rate == 0.0
            and self.burst_rate == 0.0
        )

    def has_line_faults(self) -> bool:
        """True when the profile mutates the *line stream* itself.

        Service faults (crashes, stalls, bursts) leave the data intact,
        so a profile without line faults supports bit-identity
        assertions between a faulted and a fault-free run.
        """
        return (
            self.corrupt_rate != 0.0
            or self.truncate_rate != 0.0
            or self.duplicate_rate != 0.0
            or self.drop_rate != 0.0
            or self.garbage_rate != 0.0
            or self.skew_rate != 0.0
            or self.reorder_window != 0
        )


# Named profiles for the CLI, the benches and the chaos test protocol
# (EXPERIMENTS.md).  "moderate" is the acceptance profile: 5% corruption
# plus bounded reordering.
FAULT_PROFILES: dict[str, FaultProfile] = {
    "none": FaultProfile(),
    "mild": FaultProfile(
        corrupt_rate=0.01,
        duplicate_rate=0.01,
        reorder_window=4,
    ),
    "moderate": FaultProfile(
        corrupt_rate=0.05,
        duplicate_rate=0.02,
        reorder_window=8,
        skew_rate=0.02,
        clock_skew_seconds=2.0,
    ),
    "severe": FaultProfile(
        corrupt_rate=0.10,
        truncate_rate=0.05,
        duplicate_rate=0.05,
        drop_rate=0.01,
        garbage_rate=0.03,
        skew_rate=0.05,
        reorder_window=16,
        clock_skew_seconds=5.0,
    ),
    # Service-shaped profiles (PR 6): consumed by the serving soak
    # harness.  "service-crash" injects only worker crashes — the line
    # stream is untouched, so faulted and fault-free runs must produce
    # bit-identical per-node predictions.  "service-storm" adds
    # slow-consumer stalls, ingest burst storms and mild line damage.
    "service-crash": FaultProfile(
        crash_rate=0.08,
    ),
    "service-storm": FaultProfile(
        corrupt_rate=0.02,
        duplicate_rate=0.02,
        crash_rate=0.03,
        stall_rate=0.05,
        stall_seconds=0.02,
        burst_rate=0.10,
        burst_factor=4,
    ),
}


@dataclass(frozen=True)
class ServiceFaults:
    """The service-fault decisions drawn for one unit of service work.

    ``crash`` asks the fault hook to raise
    :class:`~repro.errors.InjectedFaultError` (worker crash mid-feed),
    ``stall_seconds`` > 0 asks for a slow-consumer sleep before
    processing, and ``burst_factor`` > 1 asks the ingest driver to
    merge that many batches into one oversized send.
    """

    crash: bool = False
    stall_seconds: float = 0.0
    burst_factor: int = 1

    def is_null(self) -> bool:
        """True when no service fault fires for this unit of work."""
        return (
            not self.crash
            and self.stall_seconds == 0.0
            and self.burst_factor == 1
        )


@dataclass
class ChaosStats:
    """Counters of every fault the injector applied."""

    lines_in: int = 0
    lines_out: int = 0
    corrupted: int = 0
    truncated: int = 0
    duplicated: int = 0
    dropped: int = 0
    garbage_injected: int = 0
    skewed: int = 0
    reordered: int = 0
    crashes_injected: int = 0
    stalls_injected: int = 0
    bursts_injected: int = 0

    def as_dict(self) -> dict[str, int]:
        """All counters as a plain dict (for JSON reports)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @property
    def faults_applied(self) -> int:
        """Total number of individual fault events applied."""
        return (
            self.corrupted
            + self.truncated
            + self.duplicated
            + self.dropped
            + self.garbage_injected
            + self.skewed
            + self.reordered
            + self.crashes_injected
            + self.stalls_injected
            + self.bursts_injected
        )


class ChaosInjector:
    """Apply a :class:`FaultProfile` to a line stream, deterministically.

    The injector owns a private RNG derived from ``(seed, "chaos")`` via
    the package's seed-derivation scheme, so two injectors with the same
    profile and seed produce bit-identical output for the same input —
    the property the chaos tests rely on.
    """

    def __init__(self, profile: FaultProfile, *, seed: int = 0) -> None:
        self.profile = profile
        self.seed = seed
        self.stats = ChaosStats()
        self._rng = np.random.default_rng(derive_seed(seed, "chaos"))
        # Service faults draw from their own derived stream so the
        # line-fault sequence stays bit-identical whether or not the
        # consumer also asks for service-fault decisions.
        self._service_rng = np.random.default_rng(
            derive_seed(seed, "chaos.service")
        )

    def service_faults(self) -> ServiceFaults:
        """Draw the service-fault decisions for one unit of work.

        Deterministic given ``(profile, seed)`` and the number of prior
        calls on this injector; independent of the line-fault stream.
        """
        p = self.profile
        crash = bool(
            p.crash_rate > 0 and self._service_rng.random() < p.crash_rate
        )
        stall = 0.0
        if p.stall_rate > 0 and self._service_rng.random() < p.stall_rate:
            stall = p.stall_seconds
        burst = 1
        if p.burst_rate > 0 and self._service_rng.random() < p.burst_rate:
            burst = p.burst_factor
        if crash:
            self.stats.crashes_injected += 1
        if stall > 0:
            self.stats.stalls_injected += 1
        if burst > 1:
            self.stats.bursts_injected += 1
        return ServiceFaults(crash=crash, stall_seconds=stall, burst_factor=burst)

    # ------------------------------------------------------------------
    # per-line fault transforms
    # ------------------------------------------------------------------
    def _noise(self, length: int) -> str:
        idx = self._rng.integers(0, len(_NOISE_CHARS), length)
        return "".join(_NOISE_CHARS[i] for i in idx)

    def _corrupt(self, line: str) -> str:
        if len(line) < 2:
            return self._noise(8)
        span = int(self._rng.integers(1, max(2, len(line) // 4)))
        start = int(self._rng.integers(0, len(line) - span + 1))
        return line[:start] + self._noise(span) + line[start + span :]

    def _truncate(self, line: str) -> str:
        if len(line) < 2:
            return ""
        cut = int(self._rng.integers(1, len(line)))
        return line[:cut]

    def _skew(self, line: str) -> str:
        m = _TS_RE.match(line)
        if m is None:
            return line
        try:
            when = _dt.datetime.strptime(m.group(0), _TS_FMT)
        except ValueError:  # pragma: no cover - regex prevalidates
            return line
        delta = float(
            self._rng.uniform(
                -self.profile.clock_skew_seconds, self.profile.clock_skew_seconds
            )
        )
        skewed = when + _dt.timedelta(seconds=delta)
        return skewed.strftime(_TS_FMT) + line[m.end() :]

    # ------------------------------------------------------------------
    # stream transforms
    # ------------------------------------------------------------------
    def _faulted(self, lines: Iterable[str]) -> Iterator[str]:
        """Apply per-line faults (everything except reordering)."""
        p = self.profile
        drop_remaining = 0
        for line in lines:
            self.stats.lines_in += 1
            if drop_remaining > 0:
                drop_remaining -= 1
                self.stats.dropped += 1
                continue
            if p.drop_rate > 0 and self._rng.random() < p.drop_rate:
                self.stats.dropped += 1
                drop_remaining = p.drop_chunk - 1
                continue
            if p.garbage_rate > 0 and self._rng.random() < p.garbage_rate:
                self.stats.garbage_injected += 1
                yield self._noise(int(self._rng.integers(5, 120)))
            if p.skew_rate > 0 and self._rng.random() < p.skew_rate:
                line = self._skew(line)
                self.stats.skewed += 1
            if p.corrupt_rate > 0 and self._rng.random() < p.corrupt_rate:
                line = self._corrupt(line)
                self.stats.corrupted += 1
            if p.truncate_rate > 0 and self._rng.random() < p.truncate_rate:
                line = self._truncate(line)
                self.stats.truncated += 1
            yield line
            if p.duplicate_rate > 0 and self._rng.random() < p.duplicate_rate:
                self.stats.duplicated += 1
                yield line

    def inject(self, lines: Iterable[str]) -> Iterator[str]:
        """Yield the faulted version of *lines*.

        Reordering draws each emitted line from a bounded shuffle buffer
        of ``reorder_window`` pending lines, so no line is displaced
        further than the window — the "mildly out of order" regime the
        ingest front-end's re-sorting heap is sized for.
        """
        window = self.profile.reorder_window
        if window <= 1:
            for line in self._faulted(lines):
                self.stats.lines_out += 1
                yield line
            return
        buffer: list[str] = []
        emitted_at: list[int] = []  # arrival order, parallel to buffer
        arrival = 0
        out_index = 0

        def emit() -> str:
            nonlocal out_index
            # emitted_at is append-ordered, so index 0 is always the
            # oldest buffered line; force it out once its displacement
            # would reach the window, keeping |arrival - output| < window.
            if out_index - emitted_at[0] >= window - 1:
                pick = 0
            else:
                pick = int(self._rng.integers(0, len(buffer)))
            if emitted_at[pick] != out_index:
                self.stats.reordered += 1
            del emitted_at[pick]
            self.stats.lines_out += 1
            out_index += 1
            return buffer.pop(pick)

        for line in self._faulted(lines):
            buffer.append(line)
            emitted_at.append(arrival)
            arrival += 1
            if len(buffer) >= window:
                yield emit()
        while buffer:
            yield emit()

    def inject_records(self, records: Iterable[LogRecord]) -> Iterator[str]:
        """Render records to raw lines and inject faults into them."""
        return self.inject(render_line(r) for r in records)
