"""Chaos-evaluation harness: measure degradation under injected faults.

The operational question behind every fault model is *bounded
degradation*: if x% of the feed is damaged, how much recall is lost and
how many extra false positives appear?  :func:`chaos_evaluation` answers
it by scoring the same trained model twice — once on the clean test
records and once on the chaos-injected, hardened-ingest version of the
same records — and reporting the metric deltas together with the full
fault and quarantine accounting.

This is the engine behind the ``repro chaos`` CLI subcommand, the
``bench_chaos_degradation`` benchmark and the chaos acceptance tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..analysis.evaluation import EvaluationResult
from ..analysis.metrics import PredictionMetrics
from ..simlog.generator import GroundTruth
from ..simlog.record import LogRecord
from .chaos import ChaosInjector, ChaosStats, FaultProfile
from .ingest import HardenedIngestor, IngestConfig, IngestStats

__all__ = ["ChaosReport", "chaos_evaluation"]


@dataclass
class ChaosReport:
    """Clean-vs-chaos evaluation of one model under one fault profile."""

    profile: FaultProfile
    clean: EvaluationResult
    chaotic: EvaluationResult
    chaos_stats: ChaosStats
    ingest_stats: IngestStats
    dead_letters: int

    @property
    def clean_metrics(self) -> PredictionMetrics:
        """Table-6 metrics of the clean run."""
        return self.clean.metrics

    @property
    def chaotic_metrics(self) -> PredictionMetrics:
        """Table-6 metrics of the fault-injected run."""
        return self.chaotic.metrics

    @property
    def recall_delta(self) -> float:
        """Recall lost to the faults, in percentage points (>= 0 is loss)."""
        return self.clean_metrics.recall - self.chaotic_metrics.recall

    @property
    def fp_rate_delta(self) -> float:
        """False-positive-rate change in percentage points (> 0 is worse)."""
        return self.chaotic_metrics.fp_rate - self.clean_metrics.fp_rate

    @property
    def lines_accounted(self) -> bool:
        """Whether every injected line is accounted for by the ingest stats.

        The injector's emitted-line count must equal the ingestor's seen
        count, and every seen line must be either parsed, quarantined,
        deduplicated or blank-skipped — no silent losses.
        """
        s = self.ingest_stats
        return (
            self.chaos_stats.lines_out == s.lines_seen
            and s.lines_seen
            == s.records_out + s.quarantined + s.duplicates_dropped + s.blank_skipped
        )

    def summary(self) -> str:
        """Human-readable clean-vs-chaos table (CLI output)."""
        c, f = self.clean_metrics, self.chaotic_metrics
        lines = [
            "metric       clean    chaos    delta",
            f"recall     {c.recall:7.2f}% {f.recall:7.2f}% {f.recall - c.recall:+7.2f}pp",
            f"precision  {c.precision:7.2f}% {f.precision:7.2f}% {f.precision - c.precision:+7.2f}pp",
            f"F1         {c.f1:7.2f}% {f.f1:7.2f}% {f.f1 - c.f1:+7.2f}pp",
            f"FP rate    {c.fp_rate:7.2f}% {f.fp_rate:7.2f}% {f.fp_rate - c.fp_rate:+7.2f}pp",
            f"FN rate    {c.fn_rate:7.2f}% {f.fn_rate:7.2f}% {f.fn_rate - c.fn_rate:+7.2f}pp",
            "",
            f"faults: {self.chaos_stats.faults_applied} applied over "
            f"{self.chaos_stats.lines_in} lines "
            f"({self.chaos_stats.as_dict()})",
            f"ingest: {self.ingest_stats.as_dict()}",
            f"dead letters kept: {self.dead_letters}",
            f"all lines accounted for: {self.lines_accounted}",
        ]
        return "\n".join(lines)


def chaos_evaluation(
    model,
    records: Sequence[LogRecord],
    ground_truth: GroundTruth,
    profile: FaultProfile,
    *,
    seed: int = 0,
    ingest_config: IngestConfig | None = None,
    workers: int = 1,
    store=None,
) -> ChaosReport:
    """Evaluate *model* on clean and fault-injected versions of *records*.

    The fault path renders the records to raw syslog lines, pushes them
    through a seeded :class:`~repro.resilience.chaos.ChaosInjector` with
    *profile*, and re-ingests them with a
    :class:`~repro.resilience.ingest.HardenedIngestor` — exactly the
    path a production feed would take.  Both runs are scored against the
    same ground truth.

    With *store* (a :class:`~repro.pipeline.ArtifactStore`), both the
    clean and the post-ingest encoded streams are cached keyed by
    (vocabulary, records): sweeping fault profiles against the same
    model and test split re-parses nothing.
    """
    from ..analysis.evaluation import evaluate_model

    clean_result = evaluate_model(
        model, records, ground_truth, store=store, workers=workers
    )

    injector = ChaosInjector(profile, seed=seed)
    ingestor = HardenedIngestor(ingest_config)
    chaotic_records = list(ingestor.ingest_lines(injector.inject_records(records)))
    chaotic_result = evaluate_model(
        model, chaotic_records, ground_truth, store=store, workers=workers
    )
    return ChaosReport(
        profile=profile,
        clean=clean_result,
        chaotic=chaotic_result,
        chaos_stats=injector.stats,
        ingest_stats=ingestor.stats,
        dead_letters=len(ingestor.dead_letters),
    )
