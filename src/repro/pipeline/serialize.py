"""Typed codecs between pipeline artifacts and on-disk files.

Each stage output has one save/load pair here; the artifact store and
the full-model persistence layer (:mod:`repro.pipeline.persist`) share
these codecs so a cached stage artifact and a saved model restore
through identical code.  Events travel as columnar NumPy arrays (node
coordinates as five int32 columns with ``-1`` marking node-less events,
labels as indices into ``Label.ALL``); everything neural reuses the
models' own ``save``/``load`` npz round-tripping.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Optional, Sequence

import numpy as np

from ..config import DeshConfig
from ..core.chains import FailureChain
from ..core.classify import FailureClassifier
from ..core.deltas import LeadTimeScaler
from ..core.phase2 import Phase2Result
from ..errors import ArtifactError
from ..events import Label, ParsedEvent
from ..nn.embeddings import SkipGramEmbedder
from ..nn.model import SequenceRegressor
from ..simlog.faults import FailureClass
from ..topology.cray import CrayNodeId

__all__ = [
    "events_to_arrays",
    "events_from_arrays",
    "save_events",
    "load_events",
    "save_chains",
    "load_chains",
    "save_embedder",
    "load_embedder",
    "save_phase2",
    "load_phase2",
    "save_failure_classifier",
    "load_failure_classifier",
    "write_json",
    "read_json",
]

_NODE_FIELDS = ("col", "row", "chassis", "slot", "node")


def write_json(path: Path, payload: dict) -> None:
    """Write a JSON payload (plain write; callers sit behind the store's
    last-write-wins manifest protocol or the model-dir save)."""
    path.write_text(json.dumps(payload, indent=1))


def read_json(path: Path) -> dict:
    """Read a JSON payload, normalizing failures to :class:`ArtifactError`."""
    try:
        return json.loads(path.read_text())
    except (OSError, ValueError) as exc:
        raise ArtifactError(f"unreadable JSON payload {path}") from exc


# ----------------------------------------------------------------------
# parsed events
# ----------------------------------------------------------------------
def events_to_arrays(events: Sequence[ParsedEvent]) -> dict[str, np.ndarray]:
    """Columnar encoding of a parsed-event stream."""
    n = len(events)
    out = {
        "timestamp": np.fromiter(
            (e.timestamp for e in events), dtype=np.float64, count=n
        ),
        "phrase_id": np.fromiter(
            (e.phrase_id for e in events), dtype=np.int64, count=n
        ),
        "label": np.fromiter(
            (Label.ALL.index(e.label) for e in events), dtype=np.int8, count=n
        ),
        "terminal": np.fromiter(
            (e.terminal for e in events), dtype=np.bool_, count=n
        ),
    }
    node_cols = np.full((n, len(_NODE_FIELDS)), -1, dtype=np.int32)
    for i, e in enumerate(events):
        if e.node is not None:
            node_cols[i] = [getattr(e.node, f) for f in _NODE_FIELDS]
    out["node"] = node_cols
    return out


def events_from_arrays(data) -> list[ParsedEvent]:
    """Inverse of :func:`events_to_arrays`."""
    node_cols = np.asarray(data["node"])
    events: list[ParsedEvent] = []
    node_cache: dict[tuple, Optional[CrayNodeId]] = {}
    for ts, pid, label_idx, terminal, node_row in zip(
        data["timestamp"], data["phrase_id"], data["label"],
        data["terminal"], node_cols,
    ):
        key = tuple(int(v) for v in node_row)
        node = node_cache.get(key, _MISSING)
        if node is _MISSING:
            node = None if key[0] < 0 else CrayNodeId(*key)
            node_cache[key] = node
        events.append(
            ParsedEvent(
                timestamp=float(ts),
                phrase_id=int(pid),
                node=node,
                label=Label.ALL[int(label_idx)],
                terminal=bool(terminal),
            )
        )
    return events


_MISSING = object()


def save_events(path: Path, events: Sequence[ParsedEvent]) -> None:
    """Persist a parsed-event stream as one ``.npz`` file."""
    np.savez(path, **events_to_arrays(events))


def load_events(path: Path) -> list[ParsedEvent]:
    """Load a parsed-event stream saved by :func:`save_events`."""
    with np.load(path, allow_pickle=False) as data:
        return events_from_arrays(data)


# ----------------------------------------------------------------------
# failure chains
# ----------------------------------------------------------------------
def save_chains(path: Path, chains: Sequence[FailureChain]) -> None:
    """Persist failure chains as flattened event columns + chain lengths."""
    flat: list[ParsedEvent] = []
    lengths = np.empty(len(chains), dtype=np.int64)
    for i, chain in enumerate(chains):
        lengths[i] = len(chain.events)
        flat.extend(chain.events)
    arrays = events_to_arrays(flat)
    arrays["chain_lengths"] = lengths
    np.savez(path, **arrays)


def load_chains(path: Path) -> list[FailureChain]:
    """Inverse of :func:`save_chains`."""
    with np.load(path, allow_pickle=False) as data:
        lengths = data["chain_lengths"]
        events = events_from_arrays(data)
    chains: list[FailureChain] = []
    offset = 0
    for n in lengths:
        members = tuple(events[offset : offset + int(n)])
        offset += int(n)
        chains.append(FailureChain(members[0].node, members))
    if offset != len(events):
        raise ArtifactError(
            f"chain payload mismatch in {path}: "
            f"{len(events)} events vs {offset} accounted"
        )
    return chains


# ----------------------------------------------------------------------
# skip-gram embedder
# ----------------------------------------------------------------------
def save_embedder(path: Path, embedder: SkipGramEmbedder) -> None:
    """Persist the trained embedding matrices."""
    np.savez(path, **embedder.state_arrays())


def load_embedder(path: Path, config: DeshConfig) -> SkipGramEmbedder:
    """Rebuild a fitted embedder (hyperparameters come from *config*)."""
    with np.load(path, allow_pickle=False) as data:
        return SkipGramEmbedder.from_state(
            data["w_in"], data["w_out"], config.embedding
        )


# ----------------------------------------------------------------------
# phase-2 result (regressor + scaler + counters)
# ----------------------------------------------------------------------
def save_phase2(directory: Path, result: Phase2Result) -> None:
    """Persist a full :class:`Phase2Result` into *directory*."""
    result.regressor.save(directory / "regressor.npz")
    write_json(
        directory / "phase2.json",
        {
            "max_lead_seconds": result.scaler.max_lead_seconds,
            "vocab_size": result.scaler.vocab_size,
            "id_scale": result.scaler.id_scale,
            "num_chains": result.num_chains,
            "num_windows": result.num_windows,
            "losses": [float(v) for v in result.losses],
        },
    )


def load_phase2(directory: Path) -> Phase2Result:
    """Inverse of :func:`save_phase2`."""
    meta = read_json(directory / "phase2.json")
    return Phase2Result(
        regressor=SequenceRegressor.load(directory / "regressor.npz"),
        scaler=LeadTimeScaler(
            max_lead_seconds=float(meta["max_lead_seconds"]),
            vocab_size=int(meta["vocab_size"]),
            id_scale=float(meta["id_scale"]),
        ),
        num_chains=int(meta["num_chains"]),
        num_windows=int(meta["num_windows"]),
        losses=[float(v) for v in meta["losses"]],
    )


# ----------------------------------------------------------------------
# failure-class attribution profiles
# ----------------------------------------------------------------------
def save_failure_classifier(
    path: Path, classifier: Optional[FailureClassifier]
) -> None:
    """Persist the per-class phrase profiles (absent classifier = marker)."""
    if classifier is None or classifier._profiles is None:
        np.savez(path, __absent__=np.array([1]))
        return
    arrays = {
        f"profile::{cls.value}": vec
        for cls, vec in classifier._profiles.items()
    }
    arrays["vocab_size"] = np.array([classifier.vocab_size], dtype=np.int64)
    np.savez(path, **arrays)


def load_failure_classifier(path: Path) -> Optional[FailureClassifier]:
    """Inverse of :func:`save_failure_classifier`."""
    with np.load(path, allow_pickle=False) as data:
        if "__absent__" in data.files:
            return None
        classifier = FailureClassifier(int(data["vocab_size"][0]))
        prefix = "profile::"
        classifier._profiles = {
            FailureClass(name[len(prefix):]): data[name]
            for name in data.files
            if name.startswith(prefix)
        }
    return classifier
