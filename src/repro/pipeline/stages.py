"""Concrete Desh stages: parse -> embeddings -> phase1 -> chains -> phase2
-> (classifier, phase3).

Each stage wraps exactly the code path :class:`~repro.core.desh.Desh`
used monolithically — the trainers are reused, seeds included — so a
pipeline run produces bit-identical artifacts to the pre-pipeline
``Desh.fit``, and any prefix of the DAG can be served from cache.

Dependency edges double as invalidation rules:

* ``parse`` is keyed by the input-data fingerprint only;
* ``embeddings``/``phase1`` hang off ``parse`` (+ their own configs);
* ``chains`` hangs off ``parse`` and the extractor window, which tracks
  ``phase2.max_lead_seconds``;
* ``phase2`` hangs off ``chains`` (+ the Phase-2 config), ``phase3``
  off ``phase2`` — so editing only the Phase-2 learning rate re-runs
  ``phase2`` and ``phase3`` while everything upstream cache-hits.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from pathlib import Path
from typing import Optional

from ..config import DeshConfig, Phase3Config
from ..core.chains import ChainExtractor, FailureChain
from ..core.classify import FailureClassifier
from ..core.phase1 import Phase1Trainer
from ..core.phase2 import Phase2Result, Phase2Trainer
from ..errors import TrainingError
from ..nn.embeddings import SkipGramEmbedder
from ..nn.model import SequenceClassifier
from ..parsing.encoder import PhraseVocabulary
from ..parsing.pipeline import LogParser, ParseResult
from . import serialize
from .stage import Stage, StageContext

__all__ = [
    "ParseArtifact",
    "SequenceModelArtifact",
    "Phase3Spec",
    "ParseStage",
    "EmbeddingStage",
    "Phase1Stage",
    "ChainStage",
    "Phase2Stage",
    "ClassifierStage",
    "Phase3Stage",
    "build_desh_stages",
]

#: Message kept verbatim from the monolithic ``Desh.fit``.
_NO_CHAINS_MSG = (
    "phase 1 extracted no failure chains from the training data; "
    "the training window may contain no failures"
)


@dataclass
class ParseArtifact:
    """Output of the ``parse`` stage: fitted parser + encoded events."""

    parser: LogParser
    parsed: ParseResult


@dataclass
class SequenceModelArtifact:
    """Output of the ``phase1`` stage: the phrase-sequence LSTM."""

    classifier: Optional[SequenceClassifier]
    train_accuracy: float
    losses: list[float]


@dataclass(frozen=True)
class Phase3Spec:
    """Output of the ``phase3`` stage: inference parameters.

    Phase 3 trains nothing — its artifact pins the scoring configuration
    so config edits show up as a distinct (cheap) cache invalidation.
    """

    config: Phase3Config
    episode_gap: float


def _trainer(ctx: StageContext, parser: LogParser) -> Phase1Trainer:
    cfg = ctx.config
    return Phase1Trainer(
        parser,
        config=cfg.phase1,
        embedding_config=cfg.embedding,
        seed=cfg.seed,
        model=cfg.model,
        model_params=cfg.model_params,
    )


class ParseStage(Stage):
    """Mine templates + vocabulary and encode the training records."""

    name = "parse"
    deps = ()
    consumes_source = True

    def config_payload(self) -> object:
        """Parser identity: bump when the mining algorithm changes."""
        return {"parser": "drain-default-v1"}

    def run(self, ctx: StageContext) -> ParseArtifact:
        """Fit the template miner + vocabulary and encode the records."""
        parser = LogParser()
        parsed = parser.fit_transform(list(ctx.records))
        return ParseArtifact(parser=parser, parsed=parsed)

    def save(self, value: ParseArtifact, directory: Path) -> None:
        """Persist vocabulary, encoded events and skip count."""
        value.parser.vocab.save(directory / "vocab.json")
        serialize.save_events(directory / "events.npz", value.parsed.events)
        serialize.write_json(
            directory / "parse.json", {"skipped": value.parsed.skipped}
        )

    def load(self, directory: Path, ctx: StageContext) -> ParseArtifact:
        """Rebuild the parser from its vocabulary + the event stream."""
        vocab = PhraseVocabulary.load(directory / "vocab.json")
        parser = LogParser.from_vocabulary(vocab)
        events = serialize.load_events(directory / "events.npz")
        skipped = int(serialize.read_json(directory / "parse.json")["skipped"])
        return ParseArtifact(
            parser=parser, parsed=ParseResult(events=events, skipped=skipped)
        )


class EmbeddingStage(Stage):
    """Fit the skip-gram phrase embeddings over per-node sequences."""

    name = "embeddings"
    deps = ("parse",)

    def __init__(self, config: DeshConfig) -> None:
        self.config = config

    def config_payload(self) -> object:
        """Embedding hyperparameters + the config seed."""
        return {
            "embedding": dataclasses.asdict(self.config.embedding),
            "seed": self.config.seed,
        }

    def run(self, ctx: StageContext) -> SkipGramEmbedder:
        """Train the skip-gram embedder (same seed as ``Desh.fit``)."""
        art: ParseArtifact = ctx.value("parse")
        trainer = _trainer(ctx, art.parser)
        return trainer.train_embedder(trainer.node_sequences(art.parsed))

    def save(self, value: SkipGramEmbedder, directory: Path) -> None:
        """Persist the embedding matrices."""
        serialize.save_embedder(directory / "embedder.npz", value)

    def load(self, directory: Path, ctx: StageContext) -> SkipGramEmbedder:
        """Restore the embedder from its matrices."""
        return serialize.load_embedder(directory / "embedder.npz", ctx.config)


class Phase1Stage(Stage):
    """Train the phase-1 phrase-sequence LSTM (optional)."""

    name = "phase1"
    deps = ("parse", "embeddings")
    terminal = True  # the phrase LSTM is served directly, no downstream stage

    def __init__(self, config: DeshConfig, *, enabled: bool = True) -> None:
        self.config = config
        self.enabled = enabled

    def config_payload(self) -> object:
        """Phase-1 hyperparameters, model identity, seed, enabled flag."""
        return {
            "phase1": dataclasses.asdict(self.config.phase1),
            "model": self.config.model,
            "model_params": dict(self.config.model_params),
            "seed": self.config.seed,
            "enabled": self.enabled,
        }

    def run(self, ctx: StageContext) -> SequenceModelArtifact:
        """Train the phrase LSTM (or return an empty artifact)."""
        if not self.enabled:
            return SequenceModelArtifact(
                classifier=None, train_accuracy=0.0, losses=[]
            )
        art: ParseArtifact = ctx.value("parse")
        trainer = _trainer(ctx, art.parser)
        classifier, accuracy, losses = trainer.train_sequence_model(
            trainer.node_sequences(art.parsed),
            ctx.value("embeddings"),
            checkpoint=ctx.checkpoint_for(self.name),
        )
        return SequenceModelArtifact(
            classifier=classifier, train_accuracy=accuracy, losses=losses
        )

    def save(self, value: SequenceModelArtifact, directory: Path) -> None:
        """Persist the classifier weights + training metadata."""
        if value.classifier is not None:
            value.classifier.save(directory / "classifier.npz")
        serialize.write_json(
            directory / "phase1.json",
            {
                "has_classifier": value.classifier is not None,
                "train_accuracy": value.train_accuracy,
                "losses": [float(v) for v in value.losses],
            },
        )

    def load(self, directory: Path, ctx: StageContext) -> SequenceModelArtifact:
        """Restore the classifier and its training metadata."""
        meta = serialize.read_json(directory / "phase1.json")
        classifier = None
        if meta["has_classifier"]:
            classifier = SequenceClassifier.load(directory / "classifier.npz")
        return SequenceModelArtifact(
            classifier=classifier,
            train_accuracy=float(meta["train_accuracy"]),
            losses=[float(v) for v in meta["losses"]],
        )


class ChainStage(Stage):
    """Extract the failure chains from the parsed per-node streams."""

    name = "chains"
    deps = ("parse",)

    def __init__(self, config: DeshConfig) -> None:
        self.config = config
        self.extractor = ChainExtractor(
            lookback=config.phase2.max_lead_seconds
        )

    def config_payload(self) -> object:
        """The extractor parameters (lookback tracks phase-2)."""
        return dataclasses.asdict(self.extractor)

    def run(self, ctx: StageContext) -> list[FailureChain]:
        """Extract failure chains; fail fast when there are none."""
        art: ParseArtifact = ctx.value("parse")
        trainer = _trainer(ctx, art.parser)
        chains = self.extractor.extract(trainer.node_sequences(art.parsed))
        if not chains:
            raise TrainingError(_NO_CHAINS_MSG)
        return chains

    def save(self, value: list[FailureChain], directory: Path) -> None:
        """Persist the chains in columnar form."""
        serialize.save_chains(directory / "chains.npz", value)

    def load(self, directory: Path, ctx: StageContext) -> list[FailureChain]:
        """Restore the extracted chains."""
        return serialize.load_chains(directory / "chains.npz")


class Phase2Stage(Stage):
    """Train the (dT, phrase) lead-time regressor on the chains."""

    name = "phase2"
    deps = ("parse", "chains")

    def __init__(self, config: DeshConfig) -> None:
        self.config = config

    def config_payload(self) -> object:
        """Phase-2 hyperparameters, model identity + the config seed."""
        return {
            "phase2": dataclasses.asdict(self.config.phase2),
            "model": self.config.model,
            "model_params": dict(self.config.model_params),
            "seed": self.config.seed,
        }

    def run(self, ctx: StageContext) -> Phase2Result:
        """Train the lead-time regressor on the extracted chains."""
        art: ParseArtifact = ctx.value("parse")
        return Phase2Trainer(
            vocab_size=max(2, art.parser.num_phrases),
            config=self.config.phase2,
            seed=self.config.seed,
            model=self.config.model,
            model_params=self.config.model_params,
        ).train(ctx.value("chains"), checkpoint=ctx.checkpoint_for(self.name))

    def save(self, value: Phase2Result, directory: Path) -> None:
        """Persist the regressor, scaler and loss history."""
        serialize.save_phase2(directory, value)

    def load(self, directory: Path, ctx: StageContext) -> Phase2Result:
        """Restore the full phase-2 result."""
        return serialize.load_phase2(directory)


class ClassifierStage(Stage):
    """Bootstrap the Table-7 failure-class attribution profiles."""

    name = "classifier"
    deps = ("parse", "chains")
    terminal = True  # class profiles feed prediction, not another stage

    def __init__(self, config: DeshConfig) -> None:
        self.config = config

    def config_payload(self) -> object:
        """Keyword-rule identity + the active model family.

        The class profiles themselves are model-free, but they ship
        inside one model directory: keying them on the model identity
        keeps every per-model artifact set self-consistent (switching
        ``--model`` invalidates exactly phase1/phase2/classifier/phase3,
        never a stale mix from two families).
        """
        return {
            "rules": "table7-keywords-v1",
            "model": self.config.model,
            "model_params": dict(self.config.model_params),
        }

    def run(self, ctx: StageContext) -> Optional[FailureClassifier]:
        """Fit the keyword-bootstrapped class profiles (or ``None``)."""
        art: ParseArtifact = ctx.value("parse")
        parser = art.parser
        vocab_texts = [
            parser.vocab.text_of(i) for i in range(parser.num_phrases)
        ]
        try:
            return FailureClassifier(
                max(2, parser.num_phrases)
            ).fit_with_keywords(ctx.value("chains"), vocab_texts)
        except TrainingError:
            return None  # no chain matched any keyword rule

    def save(self, value: Optional[FailureClassifier], directory: Path) -> None:
        """Persist the class profiles (or an absence marker)."""
        serialize.save_failure_classifier(directory / "classifier.npz", value)

    def load(
        self, directory: Path, ctx: StageContext
    ) -> Optional[FailureClassifier]:
        """Restore the class profiles (or ``None``)."""
        return serialize.load_failure_classifier(directory / "classifier.npz")


class Phase3Stage(Stage):
    """Pin the phase-3 scoring parameters (no training)."""

    name = "phase3"
    deps = ("phase2",)  # fingerprint edge only: scoring tracks the regressor
    terminal = True  # phase-3 scoring parameters are the pipeline output

    def __init__(self, config: DeshConfig) -> None:
        self.config = config

    def config_payload(self) -> object:
        """Phase-3 scoring parameters + the episode gap."""
        return {
            "phase3": dataclasses.asdict(self.config.phase3),
            "episode_gap": self.config.phase2.max_lead_seconds,
        }

    def run(self, ctx: StageContext) -> Phase3Spec:
        """Pin the scoring parameters as the stage artifact."""
        return Phase3Spec(
            config=self.config.phase3,
            episode_gap=self.config.phase2.max_lead_seconds,
        )

    def save(self, value: Phase3Spec, directory: Path) -> None:
        """Persist the scoring parameters as JSON."""
        serialize.write_json(
            directory / "phase3.json",
            {
                "phase3": dataclasses.asdict(value.config),
                "episode_gap": value.episode_gap,
            },
        )

    def load(self, directory: Path, ctx: StageContext) -> Phase3Spec:
        """Restore the scoring parameters."""
        meta = serialize.read_json(directory / "phase3.json")
        return Phase3Spec(
            config=Phase3Config(**meta["phase3"]),
            episode_gap=float(meta["episode_gap"]),
        )


def build_desh_stages(
    config: DeshConfig, *, train_classifier: bool = True
) -> list[Stage]:
    """The full Desh stage DAG in topological order."""
    return [
        ParseStage(),
        EmbeddingStage(config),
        Phase1Stage(config, enabled=train_classifier),
        ChainStage(config),
        Phase2Stage(config),
        ClassifierStage(config),
        Phase3Stage(config),
    ]
