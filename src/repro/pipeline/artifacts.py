"""Typed, content-addressed, on-disk artifact store.

One artifact directory per ``(stage, fingerprint)`` pair::

    <root>/<stage>/<fingerprint[:16]>/
        ...stage payload files (npz / json)...
        artifact.json        <- written LAST, atomically

``artifact.json`` records the *full* fingerprint and is written through
:func:`~repro.resilience.checkpoint.atomic_write_bytes` after every
payload file has landed, so a crash mid-save leaves a directory without
a manifest — invisible to :meth:`ArtifactStore.has` and simply
overwritten by the next save.  Loads that fail (corrupt payloads) raise
:class:`~repro.errors.ArtifactError`; the runner treats that as a cache
miss and recomputes.
"""

from __future__ import annotations

import json
import shutil
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterator, Optional, TypeVar

from ..errors import ArtifactError
from ..resilience.checkpoint import atomic_write_bytes

__all__ = ["Artifact", "ArtifactStore"]

_MANIFEST = "artifact.json"
_DIR_CHARS = 16  # directory name length; full digest lives in the manifest

T = TypeVar("T")


@dataclass
class Artifact:
    """One materialized stage output plus its provenance."""

    stage: str
    fingerprint: str
    value: object
    cache_hit: bool = False
    seconds: float = 0.0
    path: Optional[Path] = field(default=None, compare=False)


class ArtifactStore:
    """Content-addressed cache of stage outputs under one root directory."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)

    # ------------------------------------------------------------------
    def directory(self, stage: str, fingerprint: str) -> Path:
        """Where the artifact for ``(stage, fingerprint)`` lives."""
        if not stage or "/" in stage:
            raise ArtifactError(f"invalid stage name {stage!r}")
        return self.root / stage / fingerprint[:_DIR_CHARS]

    def _manifest(self, stage: str, fingerprint: str) -> Optional[dict]:
        path = self.directory(stage, fingerprint) / _MANIFEST
        if not path.exists():
            return None
        try:
            return json.loads(path.read_text())
        except (OSError, ValueError):
            return None

    def has(self, stage: str, fingerprint: str) -> bool:
        """Whether a complete artifact exists for this exact fingerprint."""
        manifest = self._manifest(stage, fingerprint)
        return manifest is not None and manifest.get("fingerprint") == fingerprint

    # ------------------------------------------------------------------
    def save(
        self,
        stage: str,
        fingerprint: str,
        writer: Callable[[Path], None],
        *,
        meta: dict | None = None,
    ) -> Path:
        """Materialize one artifact; returns its directory.

        *writer* receives the (created, emptied) artifact directory and
        writes the stage payload files into it; the manifest is written
        last, atomically, making the artifact visible.
        """
        directory = self.directory(stage, fingerprint)
        if directory.exists():
            # Torn previous save or short-prefix collision: start clean.
            shutil.rmtree(directory)
        directory.mkdir(parents=True)
        try:
            writer(directory)
        # deshlint: allow[R4] writer runs arbitrary stage codecs; any
        # failure must become a typed ArtifactError after cleanup
        except Exception as exc:
            shutil.rmtree(directory, ignore_errors=True)
            raise ArtifactError(
                f"failed to write artifact {stage}/{fingerprint[:12]}: {exc}"
            ) from exc
        manifest = {
            "stage": stage,
            "fingerprint": fingerprint,
            # deshlint: allow[R2] provenance metadata only: the creation
            # timestamp is never fingerprinted nor part of a loaded value
            "created": time.time(),
            **(meta or {}),
        }
        atomic_write_bytes(
            directory / _MANIFEST, json.dumps(manifest, indent=1).encode()
        )
        return directory

    def load(
        self,
        stage: str,
        fingerprint: str,
        reader: Callable[[Path], T],
    ) -> T:
        """Load one artifact through *reader*; raises on absence/corruption."""
        if not self.has(stage, fingerprint):
            raise ArtifactError(
                f"no artifact for {stage}/{fingerprint[:12]} under {self.root}"
            )
        directory = self.directory(stage, fingerprint)
        try:
            return reader(directory)
        except ArtifactError:
            raise
        # deshlint: allow[R4] reader runs arbitrary stage codecs over
        # possibly-corrupt payloads; wrap everything as ArtifactError so
        # the runner treats it as a cache miss
        except Exception as exc:
            raise ArtifactError(
                f"failed to read artifact {stage}/{fingerprint[:12]}: {exc}"
            ) from exc

    # ------------------------------------------------------------------
    def entries(self) -> Iterator[dict]:
        """All complete artifact manifests in the store."""
        if not self.root.exists():
            return
        for stage_dir in sorted(self.root.iterdir()):
            if not stage_dir.is_dir():
                continue
            for art_dir in sorted(stage_dir.iterdir()):
                path = art_dir / _MANIFEST
                if not path.exists():
                    continue
                try:
                    manifest = json.loads(path.read_text())
                except (OSError, ValueError):
                    continue
                manifest["path"] = str(art_dir)
                yield manifest
