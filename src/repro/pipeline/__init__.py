"""Staged Desh training pipeline: typed artifacts + fingerprint caching.

The package decomposes the monolithic ``Desh.fit`` into a DAG of
cacheable stages (``parse`` → ``embeddings``/``chains`` → ``phase1`` /
``phase2`` → ``classifier``/``phase3``), each keyed by a
content-addressed fingerprint over its configuration and upstream
fingerprints.  Re-running with an unchanged prefix serves those stages
from the on-disk :class:`ArtifactStore`; editing one stage's config
invalidates exactly that stage and its descendants.

Entry points:

* :class:`DeshPipeline` — train through the DAG (``Desh.fit`` wraps it).
* :func:`save_model` / :func:`load_model` — full-model persistence.
* :func:`cached_transform` — inference-side parse caching.
"""

from .artifacts import Artifact, ArtifactStore
from .facade import DeshPipeline, assemble_model, cached_transform
from .fingerprint import (
    canonical_json,
    fingerprint_payload,
    fingerprint_records,
)
from .persist import MODEL_FORMAT, load_model, save_model
from .runner import (
    LIVE,
    PipelineResult,
    PipelineRunner,
    StagePlan,
    StageReport,
)
from .stage import Stage, StageContext
from .stages import build_desh_stages

__all__ = [
    "Artifact",
    "ArtifactStore",
    "DeshPipeline",
    "LIVE",
    "MODEL_FORMAT",
    "PipelineResult",
    "PipelineRunner",
    "Stage",
    "StageContext",
    "StagePlan",
    "StageReport",
    "assemble_model",
    "build_desh_stages",
    "cached_transform",
    "canonical_json",
    "fingerprint_payload",
    "fingerprint_records",
    "load_model",
    "save_model",
]
