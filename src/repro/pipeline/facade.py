"""High-level entry points: train Desh through the staged pipeline.

:class:`DeshPipeline` builds the stage DAG for one configuration, runs
it (optionally against an on-disk :class:`ArtifactStore`), and
assembles the resulting artifacts into the exact :class:`DeshModel` the
monolithic ``Desh.fit`` used to produce.  ``Desh.fit`` itself is now a
thin facade over this class.

:func:`cached_transform` is the inference-side counterpart: it encodes
*test* records with a fitted parser, caching the encoded event stream
keyed by (vocabulary, records) so sweeps, evaluations and chaos runs
stop re-parsing the same raw log on every invocation.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Sequence

from ..config import DeshConfig
from ..core.phase1 import Phase1Result
from ..errors import ArtifactError
from ..core.phase3 import Phase3Predictor
from ..parsing.pipeline import LogParser, ParseResult
from ..simlog.record import LogRecord
from .artifacts import ArtifactStore
from .fingerprint import fingerprint_payload, fingerprint_records
from .runner import LIVE, PipelineResult, PipelineRunner
from .serialize import load_events, read_json, save_events, write_json
from .stage import StageContext
from .stages import ParseArtifact, Phase3Spec, build_desh_stages

__all__ = ["DeshPipeline", "assemble_model", "cached_transform"]


class DeshPipeline:
    """The staged Desh training pipeline with optional artifact caching.

    Parameters
    ----------
    config:
        Full pipeline configuration (defaults to :class:`DeshConfig`).
    train_classifier:
        Whether the ``phase1`` stage trains the phrase LSTM.
    cache_dir:
        Root of the on-disk artifact store; ``None`` runs fully
        in-memory (the pre-pipeline behavior).
    checkpoint_dir:
        Optional crash-checkpoint root for the LSTM fits (same layout
        as ``Desh.fit(checkpoint_dir=...)``: ``<dir>/phase1``,
        ``<dir>/phase2``).
    """

    def __init__(
        self,
        config: DeshConfig | None = None,
        *,
        train_classifier: bool = True,
        cache_dir: "str | Path | None" = None,
        checkpoint_dir: "str | Path | None" = None,
    ) -> None:
        self.config = config if config is not None else DeshConfig()
        self.store = (
            ArtifactStore(cache_dir) if cache_dir is not None else None
        )
        self.checkpoint_dir = (
            Path(checkpoint_dir) if checkpoint_dir is not None else None
        )
        self.runner = PipelineRunner(
            build_desh_stages(self.config, train_classifier=train_classifier),
            store=self.store,
        )

    # ------------------------------------------------------------------
    def data_fingerprint(self, records: Sequence[LogRecord]) -> str:
        """The cache key contribution of the training records."""
        if self.store is None:
            return LIVE  # no cache: skip the hashing pass entirely
        return fingerprint_records(records)

    def run(
        self,
        records: Sequence[LogRecord],
        *,
        data_fingerprint: str | None = None,
    ) -> PipelineResult:
        """Execute the DAG over *records*; returns all stage artifacts."""
        if data_fingerprint is None:
            data_fingerprint = self.data_fingerprint(records)
        ctx = StageContext(
            config=self.config,
            records=records,
            checkpoint_root=self.checkpoint_dir,
        )
        return self.runner.run(ctx, data_fingerprint=data_fingerprint)

    def fit(
        self,
        records: Sequence[LogRecord],
        *,
        data_fingerprint: str | None = None,
    ):
        """Train (or cache-restore) the full pipeline into a model."""
        result = self.run(records, data_fingerprint=data_fingerprint)
        return assemble_model(self.config, result)


def assemble_model(config: DeshConfig, result: PipelineResult):
    """Compose stage artifacts into a :class:`~repro.core.desh.DeshModel`."""
    from ..core.desh import DeshModel

    parse: ParseArtifact = result.value("parse")
    phase1_art = result.value("phase1")
    spec: Phase3Spec = result.value("phase3")
    phase2 = result.value("phase2")
    sequences = [
        seq for seq in parse.parsed.by_node().values() if seq.node is not None
    ]
    phase1 = Phase1Result(
        embedder=result.value("embeddings"),
        classifier=phase1_art.classifier,
        chains=list(result.value("chains")),
        sequences=sequences,
        train_accuracy=phase1_art.train_accuracy,
        losses=list(phase1_art.losses),
    )
    predictor = Phase3Predictor(
        phase2.regressor,
        phase2.scaler,
        config=spec.config,
        episode_gap=spec.episode_gap,
    )
    return DeshModel(
        config=config,
        parser=parse.parser,
        phase1=phase1,
        phase2=phase2,
        predictor=predictor,
        classifier=result.value("classifier"),
    )


# ----------------------------------------------------------------------
# inference-side parse caching
# ----------------------------------------------------------------------
def cached_transform(
    parser: LogParser,
    records: Sequence[LogRecord],
    store: Optional[ArtifactStore],
    *,
    stage: str = "encode",
    data_fingerprint: str | None = None,
) -> ParseResult:
    """Encode *records* with a fitted parser, caching the encoded stream.

    The cache key combines the parser's vocabulary with the record
    fingerprint, so the artifact is reused only when both the model's
    phrase inventory and the raw log are unchanged.  With ``store=None``
    this is exactly ``parser.transform(records)``.
    """
    if store is None:
        return parser.transform(records)
    if data_fingerprint is None:
        data_fingerprint = fingerprint_records(records)
    fingerprint = fingerprint_payload(
        {
            "stage": stage,
            "vocab": parser.vocab.to_dict(),
            "data": data_fingerprint,
        }
    )
    if store.has(stage, fingerprint):
        # A corrupt cached artifact is a cache miss, not a crash: the
        # store wraps any payload-read failure in ArtifactError, and we
        # fall through to re-encode.  Anything else (a bug, not a bad
        # cache entry) propagates as its typed repro.errors exception.
        try:
            return store.load(stage, fingerprint, _read_parse_result)
        except ArtifactError:
            pass  # corrupt artifact: re-encode below
    parsed = parser.transform(records)

    def _write(directory: Path) -> None:
        save_events(directory / "events.npz", parsed.events)
        write_json(directory / "parse.json", {"skipped": parsed.skipped})

    store.save(stage, fingerprint, _write)
    return parsed


def _read_parse_result(directory: Path) -> ParseResult:
    events = load_events(directory / "events.npz")
    skipped = int(read_json(directory / "parse.json")["skipped"])
    return ParseResult(events=events, skipped=skipped)
