"""Execute a stage DAG with fingerprint caching and per-stage accounting.

:class:`PipelineRunner` validates the DAG once (unique names, known
deps, no cycles), computes every stage's cache fingerprint by chaining
config payloads through dependency edges, and then runs the stages in
topological order — serving any stage whose fingerprint already exists
in the :class:`~repro.pipeline.artifacts.ArtifactStore` from disk and
computing + materializing the rest.  A corrupt cached artifact is
treated as a miss (recomputed and re-saved), never a crash.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..errors import ArtifactError, PipelineError
from ..obs import current_tracer, metrics_registry
from .artifacts import Artifact, ArtifactStore
from .fingerprint import combine
from .stage import Stage, StageContext

__all__ = ["PipelineRunner", "PipelineResult", "StageReport", "StagePlan"]

#: Data fingerprint used for in-memory (uncached) runs.
LIVE = "live"


@dataclass(frozen=True)
class StageReport:
    """Provenance of one executed (or cache-served) stage."""

    name: str
    fingerprint: str
    cache_hit: bool
    seconds: float
    deps: tuple[str, ...]


@dataclass(frozen=True)
class StagePlan:
    """One row of a dry-run plan: would this stage hit the cache?"""

    name: str
    fingerprint: str
    cached: bool
    deps: tuple[str, ...]


@dataclass
class PipelineResult:
    """All artifacts plus the per-stage execution reports."""

    artifacts: dict[str, Artifact]
    reports: list[StageReport] = field(default_factory=list)

    def value(self, stage: str) -> object:
        """The computed value of one stage."""
        return self.artifacts[stage].value

    @property
    def cache_hits(self) -> list[str]:
        """Names of stages served from the artifact store."""
        return [r.name for r in self.reports if r.cache_hit]

    @property
    def cache_misses(self) -> list[str]:
        """Names of stages that had to run."""
        return [r.name for r in self.reports if not r.cache_hit]

    @property
    def total_seconds(self) -> float:
        """Wall-clock spent across all stages (load or run)."""
        return sum(r.seconds for r in self.reports)


class PipelineRunner:
    """Run a validated stage DAG against an optional artifact store."""

    def __init__(
        self,
        stages: Sequence[Stage],
        *,
        store: Optional[ArtifactStore] = None,
    ) -> None:
        names = [s.name for s in stages]
        if len(set(names)) != len(names):
            raise PipelineError(f"duplicate stage names in {names}")
        self.stages = {s.name: s for s in stages}
        self.store = store
        self.order = self._topological_order()

    # ------------------------------------------------------------------
    def _topological_order(self) -> list[str]:
        """Kahn's algorithm; rejects unknown deps and cycles."""
        for stage in self.stages.values():
            for dep in stage.deps:
                if dep not in self.stages:
                    raise PipelineError(
                        f"stage {stage.name!r} depends on unknown stage {dep!r}"
                    )
        remaining = {
            name: set(stage.deps) for name, stage in self.stages.items()
        }
        order: list[str] = []
        while remaining:
            ready = sorted(n for n, deps in remaining.items() if not deps)
            if not ready:
                raise PipelineError(
                    f"stage dependency cycle among {sorted(remaining)}"
                )
            for name in ready:
                order.append(name)
                del remaining[name]
            for deps in remaining.values():
                deps.difference_update(ready)
        return order

    # ------------------------------------------------------------------
    def fingerprints(self, data_fingerprint: str = LIVE) -> dict[str, str]:
        """Every stage's cache key, chained through dependency edges."""
        fps: dict[str, str] = {}
        for name in self.order:
            stage = self.stages[name]
            fps[name] = combine(
                name,
                stage.config_payload(),
                {dep: fps[dep] for dep in stage.deps},
                data_fingerprint if stage.consumes_source else None,
            )
        return fps

    def plan(self, data_fingerprint: str = LIVE) -> list[StagePlan]:
        """Dry-run view: which stages would be served from cache."""
        fps = self.fingerprints(data_fingerprint)
        return [
            StagePlan(
                name=name,
                fingerprint=fps[name],
                cached=bool(self.store and self.store.has(name, fps[name])),
                deps=self.stages[name].deps,
            )
            for name in self.order
        ]

    # ------------------------------------------------------------------
    def run(
        self,
        ctx: StageContext,
        *,
        data_fingerprint: str = LIVE,
    ) -> PipelineResult:
        """Execute the DAG, reusing cached artifacts where possible."""
        fps = self.fingerprints(data_fingerprint)
        artifacts: dict[str, Artifact] = {}
        reports: list[StageReport] = []
        tracer = current_tracer()
        registry = metrics_registry()
        with tracer.span("pipeline.run", stages=len(self.order)):
            for name in self.order:
                stage = self.stages[name]
                fp = fps[name]
                with tracer.span(f"stage:{name}") as span:
                    start = time.perf_counter()
                    value, hit, path = self._materialize(stage, fp, ctx)
                    seconds = time.perf_counter() - start
                    span.set(cache_hit=hit)
                registry.counter(
                    "pipeline.cache_hits" if hit else "pipeline.cache_misses"
                ).inc()
                registry.histogram("pipeline.stage_ms").observe(seconds * 1e3)
                ctx.inputs[name] = value
                artifacts[name] = Artifact(
                    stage=name,
                    fingerprint=fp,
                    value=value,
                    cache_hit=hit,
                    seconds=seconds,
                    path=path,
                )
                reports.append(
                    StageReport(
                        name=name,
                        fingerprint=fp,
                        cache_hit=hit,
                        seconds=seconds,
                        deps=stage.deps,
                    )
                )
        return PipelineResult(artifacts=artifacts, reports=reports)

    def _materialize(self, stage: Stage, fp: str, ctx: StageContext):
        """Load the stage from cache or run + persist it."""
        if self.store is not None and self.store.has(stage.name, fp):
            try:
                value = self.store.load(
                    stage.name, fp, lambda d: stage.load(d, ctx)
                )
                return value, True, self.store.directory(stage.name, fp)
            except ArtifactError:
                pass  # corrupt artifact: fall through to recompute
        value = stage.run(ctx)
        path = None
        if self.store is not None:
            path = self.store.save(
                stage.name, fp, lambda d: stage.save(value, d)
            )
        return value, False, path
