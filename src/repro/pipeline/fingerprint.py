"""Content fingerprints for pipeline stages and artifacts.

Every stage's cache key is a SHA-256 digest over (a) the stage's own
configuration payload, (b) the fingerprints of its upstream stages, and
(c) — for source stages — a fingerprint of the input data.  Because the
key is content-addressed, invalidation needs no bookkeeping: changing
the Phase-2 learning rate changes the ``phase2`` fingerprint (and, via
dependency chaining, ``phase3``'s) while ``parse``/``phase1``/``chains``
keys are untouched and keep hitting the cache.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Iterable, Mapping

from ..simlog.record import LogRecord

__all__ = [
    "canonical_json",
    "fingerprint_payload",
    "fingerprint_bytes",
    "fingerprint_file",
    "fingerprint_records",
    "combine",
]


def canonical_json(payload: object) -> str:
    """Stable JSON text: sorted keys, no whitespace, ASCII only."""
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":"), ensure_ascii=True
    )


def fingerprint_bytes(data: bytes) -> str:
    """SHA-256 hex digest of a byte string."""
    return hashlib.sha256(data).hexdigest()


def fingerprint_payload(payload: object) -> str:
    """SHA-256 over the canonical JSON encoding of *payload*."""
    return fingerprint_bytes(canonical_json(payload).encode())


def fingerprint_file(path: str | Path, *, chunk_size: int = 1 << 20) -> str:
    """SHA-256 over a file's raw bytes, streamed in chunks."""
    h = hashlib.sha256()
    with open(path, "rb") as fh:
        while True:
            chunk = fh.read(chunk_size)
            if not chunk:
                break
            h.update(chunk)
    return h.hexdigest()


def fingerprint_records(records: Iterable[LogRecord]) -> str:
    """Order-sensitive SHA-256 over a stream of log records.

    Hashes the fields that influence parsing (timestamp, node, facility,
    message); two record streams with the same fingerprint produce the
    same parse artifact.
    """
    h = hashlib.sha256()
    for r in records:
        h.update(
            f"{r.timestamp!r}|{r.node}|{r.facility}|{r.message}\n".encode()
        )
    return h.hexdigest()


def combine(stage: str, config: object, deps: Mapping[str, str], data: str | None) -> str:
    """The stage cache key: config + upstream fingerprints (+ source data)."""
    return fingerprint_payload(
        {
            "stage": stage,
            "config": config,
            "deps": dict(sorted(deps.items())),
            "data": data,
        }
    )
