"""Full-model persistence: a saved Desh model that loses nothing.

The pre-pipeline ``cli.save_model`` kept only the phase-2 regressor,
the vocabulary and the scaler — a loaded "model" could score episodes
but had lost its phase-1 artifacts, its failure chains and its failure
classifier, so it could neither classify warnings nor learn online via
``DeshModel.update``.  :func:`save_model` persists every component and
:func:`load_model` restores a :class:`~repro.core.desh.DeshModel` whose
``warn()`` output is identical to the model that was saved.

Directory layout (format 3; a superset of the legacy layout, so legacy
readers like ``cli.load_predictor`` keep working on new directories).
Format 3 adds the model-zoo identity (``meta.json``'s ``model`` field +
per-network backbone metadata inside the npz payloads); format-2
directories — written before the zoo existed — load fine and are
treated as ``lstm``::

    meta.json                scaler params, counters, format marker
    config.json              the full DeshConfig
    vocab.json               phrase vocabulary (rebuilds the parser)
    phase2.npz               trained lead-time regressor
    phase2.json              phase-2 counters + loss history
    embedder.npz             skip-gram embedding matrices
    phase1.json              phase-1 accuracy/losses (+ classifier flag)
    phase1_classifier.npz    phrase-sequence LSTM (when trained)
    chains.npz               extracted failure chains
    failure_classifier.npz   Table-7 class profiles (or absence marker)

Not persisted: ``phase1.sequences`` (the raw training event streams) —
they are training-data residue no inference or update path reads;
loaded models carry an empty list there.
"""

from __future__ import annotations

import json
from pathlib import Path

from ..config import DeshConfig
from ..core.deltas import LeadTimeScaler
from ..core.phase1 import Phase1Result
from ..core.phase3 import Phase3Predictor
from ..errors import SerializationError
from ..nn.model import SequenceClassifier, SequenceRegressor
from ..nn.registry import get_model
from ..parsing.encoder import PhraseVocabulary
from ..parsing.pipeline import LogParser
from . import serialize

__all__ = ["save_model", "load_model", "MODEL_FORMAT"]

MODEL_FORMAT = 3

#: Oldest directory format :func:`load_model` still accepts.  Format 2
#: predates the model zoo; its networks are implicitly ``lstm``.
_MIN_LOAD_FORMAT = 2


def save_model(model, directory: str | Path) -> None:
    """Persist a trained :class:`DeshModel` completely (format 3)."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    model.phase2.regressor.save(directory / "phase2.npz")
    model.parser.vocab.save(directory / "vocab.json")
    serialize.write_json(
        directory / "meta.json",
        {
            "format": MODEL_FORMAT,
            "max_lead_seconds": model.phase2.scaler.max_lead_seconds,
            "vocab_size": model.phase2.scaler.vocab_size,
            "id_scale": model.phase2.scaler.id_scale,
            "num_chains": model.num_chains,
            "config_seed": model.config.seed,
            "model": model.config.model,
            "model_params": dict(model.config.model_params),
        },
    )
    serialize.write_json(directory / "config.json", model.config.to_dict())
    serialize.write_json(
        directory / "phase2.json",
        {
            "num_chains": model.phase2.num_chains,
            "num_windows": model.phase2.num_windows,
            "losses": [float(v) for v in model.phase2.losses],
        },
    )
    serialize.save_embedder(directory / "embedder.npz", model.phase1.embedder)
    if model.phase1.classifier is not None:
        model.phase1.classifier.save(directory / "phase1_classifier.npz")
    serialize.write_json(
        directory / "phase1.json",
        {
            "has_classifier": model.phase1.classifier is not None,
            "train_accuracy": model.phase1.train_accuracy,
            "losses": [float(v) for v in model.phase1.losses],
        },
    )
    serialize.save_chains(directory / "chains.npz", model.phase1.chains)
    serialize.save_failure_classifier(
        directory / "failure_classifier.npz", model.classifier
    )


def load_model(directory: str | Path):
    """Restore a complete :class:`DeshModel` saved by :func:`save_model`.

    Raises :class:`SerializationError` for legacy (format-1) model
    directories, which lack the phase-1/chain/classifier payloads —
    those still load through :func:`repro.cli.load_predictor`.
    """
    from ..core.desh import DeshModel
    from ..core.phase2 import Phase2Result

    directory = Path(directory)
    meta_path = directory / "meta.json"
    try:
        meta = json.loads(meta_path.read_text())
    except (OSError, ValueError) as exc:
        raise SerializationError(f"unreadable model metadata {meta_path}") from exc
    if meta.get("format", 1) < _MIN_LOAD_FORMAT:
        raise SerializationError(
            f"{directory} holds a legacy (lossy) model directory; "
            "re-save it with save_model, or load it via cli.load_predictor"
        )
    # Validate the manifest's model family before touching any weights:
    # a garbled name must surface as ConfigError naming the registry,
    # not as a KeyError from deep inside deserialization.
    get_model(str(meta.get("model", "lstm")))
    config = DeshConfig.from_dict(
        serialize.read_json(directory / "config.json")
    )
    vocab = PhraseVocabulary.load(directory / "vocab.json")
    parser = LogParser.from_vocabulary(vocab)

    phase2_meta = serialize.read_json(directory / "phase2.json")
    phase2 = Phase2Result(
        regressor=SequenceRegressor.load(directory / "phase2.npz"),
        scaler=LeadTimeScaler(
            max_lead_seconds=float(meta["max_lead_seconds"]),
            vocab_size=int(meta["vocab_size"]),
            id_scale=float(meta["id_scale"]),
        ),
        num_chains=int(phase2_meta["num_chains"]),
        num_windows=int(phase2_meta["num_windows"]),
        losses=[float(v) for v in phase2_meta["losses"]],
    )

    phase1_meta = serialize.read_json(directory / "phase1.json")
    classifier = None
    if phase1_meta["has_classifier"]:
        classifier = SequenceClassifier.load(
            directory / "phase1_classifier.npz"
        )
    phase1 = Phase1Result(
        embedder=serialize.load_embedder(directory / "embedder.npz", config),
        classifier=classifier,
        chains=serialize.load_chains(directory / "chains.npz"),
        sequences=[],
        train_accuracy=float(phase1_meta["train_accuracy"]),
        losses=[float(v) for v in phase1_meta["losses"]],
    )

    predictor = Phase3Predictor(
        phase2.regressor,
        phase2.scaler,
        config=config.phase3,
        episode_gap=config.phase2.max_lead_seconds,
    )
    return DeshModel(
        config=config,
        parser=parser,
        phase1=phase1,
        phase2=phase2,
        predictor=predictor,
        classifier=serialize.load_failure_classifier(
            directory / "failure_classifier.npz"
        ),
    )
