"""The ``Stage`` protocol: one cacheable unit of pipeline work.

A stage declares its ``name``, the names of its upstream ``deps``, a
JSON-stable :meth:`Stage.config_payload` (the stage's contribution to
its cache fingerprint), a :meth:`Stage.run` that computes the stage
value from the context, and a ``save``/``load`` codec pair so the
artifact store can materialize the value on disk.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Sequence

from ..config import DeshConfig
from ..simlog.record import LogRecord

__all__ = ["Stage", "StageContext"]


@dataclass
class StageContext:
    """Everything a stage may read while running.

    ``inputs`` maps upstream stage names to their computed values; the
    runner fills it in topological order.  ``checkpoint_root`` (when
    set) lets training stages write epoch-granular crash checkpoints
    under ``<root>/<stage-name>``.
    """

    config: DeshConfig
    records: Sequence[LogRecord] = ()
    inputs: dict[str, object] = field(default_factory=dict)
    checkpoint_root: Optional[Path] = None

    def value(self, stage: str) -> object:
        """The computed value of an upstream stage."""
        return self.inputs[stage]

    def span(self, name: str, **attributes: object):
        """A tracing span for work inside this pipeline run.

        Opens a child of the active span on the process tracer (the
        runner wraps every ``Stage.run`` in a ``stage:<name>`` span, so
        stage-internal spans nest under their stage automatically).  A
        no-op under the default :class:`~repro.obs.NullTracer`.
        """
        from ..obs import current_tracer

        return current_tracer().span(name, **attributes)

    def checkpoint_for(self, stage: str):
        """A :class:`CheckpointManager` for *stage*, or ``None``."""
        if self.checkpoint_root is None:
            return None
        from ..resilience.checkpoint import CheckpointManager

        return CheckpointManager(Path(self.checkpoint_root) / stage)


class Stage(abc.ABC):
    """One named, fingerprintable, cacheable pipeline stage."""

    #: Unique stage name (also the artifact-store subdirectory).
    name: str = ""
    #: Names of upstream stages whose values this stage consumes.
    deps: tuple[str, ...] = ()
    #: Whether the raw input records feed this stage directly (source
    #: stages mix the data fingerprint into their cache key).
    consumes_source = False
    #: Whether this stage's artifact is a pipeline *output* rather than
    #: an intermediate.  Sinks set this so deshlint's F2 artifact-flow
    #: analysis does not flag them as "produced but never consumed".
    terminal = False

    @abc.abstractmethod
    def config_payload(self) -> object:
        """JSON-serializable configuration that keys this stage's cache."""

    @abc.abstractmethod
    def run(self, ctx: StageContext) -> object:
        """Compute the stage value from upstream inputs (and records)."""

    @abc.abstractmethod
    def save(self, value: object, directory: Path) -> None:
        """Write the stage value into an artifact directory."""

    @abc.abstractmethod
    def load(self, directory: Path, ctx: StageContext) -> object:
        """Rebuild the stage value from an artifact directory."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Stage {self.name} deps={self.deps}>"
