#!/usr/bin/env python
"""Generate a full markdown evaluation report for one system.

Trains Desh on the paper's 30% split of a synthetic system and writes a
deployment-review-style report (Table-6 metrics, per-class lead times,
recovery feasibility, unknown-phrase indicators) to ``report_<sys>.md``.

Run:
    python examples/generate_report.py [M1|M2|M3|M4]
"""

from __future__ import annotations

import sys
from pathlib import Path

from repro import Desh, DeshConfig, generate_system
from repro.analysis import system_report


def main() -> None:
    name = sys.argv[1].upper() if len(sys.argv) > 1 else "M3"
    print(f"Generating + training system {name} ...")
    log = generate_system(name, seed=2018)
    train, test = log.split(0.3)
    model = Desh(DeshConfig()).fit(list(train.records), train_classifier=False)

    report = system_report(
        model,
        test.records,
        test.ground_truth,
        title=f"Desh evaluation report — system {name}",
    )
    out = Path(f"report_{name.lower()}.md")
    out.write_text(report)
    print(f"wrote {out} ({len(report.splitlines())} lines)\n")
    print(report)


if __name__ == "__main__":
    main()
