#!/usr/bin/env python
"""Unknown-phrase reliability report (the paper's Section 4.3 analysis).

Trains phase 1 on a synthetic system, then reports:

* Table 8 / Figure 9 — for each Unknown phrase, the percentage of its
  occurrences that fall inside failure chains;
* Table 9 — example failure vs. non-failure sequences sharing phrases
  (Observation 5: the same phrase can be benign in one context and part
  of a failure chain in another).

Run:
    python examples/unknown_phrase_report.py
"""

from __future__ import annotations

from repro import Desh, DeshConfig, generate_system
from repro.analysis import render_table, sequence_examples, unknown_phrase_analysis
from repro.core.chains import segment_episodes


def main() -> None:
    print("Training Desh phase 1 on system M1 ...")
    log = generate_system("M1", seed=11)
    train, _ = log.split(0.3)
    model = Desh(DeshConfig()).fit(list(train.records), train_classifier=False)

    stats = unknown_phrase_analysis(
        model.phase1.sequences,
        model.phase1.chains,
        model.parser.vocab,
        model.parser.labels_by_id(),
    )

    rows = [
        [s.phrase[:58], s.total_occurrences, s.chain_occurrences, f"{s.contribution_pct:.0f}%"]
        for s in stats[:12]
    ]
    print()
    print(
        render_table(
            ["Unknown phrase", "seen", "in chains", "contribution"],
            rows,
            title="Table 8 / Figure 9 — Unknown-phrase contribution to node failures",
        )
    )

    # Non-failure episodes: anomalous sequences that never hit a terminal.
    non_failure = [
        ep
        for seq in model.phase1.sequences
        for ep in segment_episodes(seq, gap=600.0, min_events=2)
        if not ep.ends_in_terminal
    ]
    pairs = sequence_examples(
        model.phase1.chains, non_failure, model.parser.vocab, max_pairs=2
    )
    print("\nTable 9 — the same phrases with and without node failures:")
    for i, (failure, survivor) in enumerate(pairs, 1):
        shared = set(failure) & set(survivor)
        print(f"\n  Pair {i} (shared phrases: {len(shared)})")
        print("    FAILURE chain:")
        for p in failure:
            marker = "*" if p in shared else " "
            print(f"     {marker} {p[:70]}")
        print("    NO failure:")
        for p in survivor:
            marker = "*" if p in shared else " "
            print(f"     {marker} {p[:70]}")
    print(
        "\nObservation 5 holds: phrases marked * occur in both a failure"
        " chain and a sequence that recovered."
    )


if __name__ == "__main__":
    main()
