#!/usr/bin/env python
"""Cabinet quarantine policy under cascading failures.

Combines three pieces of the library into an operational what-if study:

* the generator's *cascade* mode injects spatially correlated failures
  (a failed node drags down a cabinet mate minutes later — the Gupta
  et al. DSN'15 correlation the paper cites in Section 4.3),
* the streaming monitor raises online warnings with node locations,
* a simple policy quarantines the warned node's whole cabinet for a
  hold-down period, so jobs are not scheduled onto the nodes most
  likely to fail next.

The study reports how many of the *cascade* failures landed inside an
active quarantine — failures whose job-level impact the location-aware
warning could have prevented.

Run:
    python examples/cascade_quarantine.py
"""

from __future__ import annotations

import numpy as np

from repro import Desh, DeshConfig
from repro.analysis import spatial_correlation
from repro.core import StreamingMonitor
from repro.simlog import GeneratorConfig, LogGenerator
from repro.topology import ClusterTopology

QUARANTINE_SECONDS = 600.0


def main() -> None:
    topo = ClusterTopology(
        cabinet_cols=4,
        cabinet_rows=1,
        chassis_per_cabinet=2,
        slots_per_chassis=2,
        nodes_per_blade=2,
    )
    gen = LogGenerator(topo)
    config = GeneratorConfig(
        horizon=14 * 3600.0,
        failure_count=90,
        near_miss_ratio=0.4,
        maintenance_count=0,
        cascade_prob=0.5,
    )
    print("Generating a cascade-prone system (cascade_prob=0.5) ...")
    log = gen.generate(config, np.random.default_rng(29))
    corr = spatial_correlation(log.ground_truth.failures, topo)
    print(
        f"  {len(log.ground_truth.failures)} failures; cabinet correlation "
        f"ratio {corr.correlation_ratio:.2f} (1.0 = independent)"
    )

    train, test = log.split(0.3)
    print("Training Desh ...")
    model = Desh(DeshConfig()).fit(list(train.records), train_classifier=False)

    print("Replaying the test window with a quarantine policy ...\n")
    monitor = StreamingMonitor(model)
    quarantines: dict[tuple[int, int], float] = {}  # cabinet -> expiry time
    protected = 0
    warned = 0
    for record in test.records:
        warning = monitor.feed(record)
        if warning is not None and warning.node is not None:
            warned += 1
            quarantines[warning.node.cabinet] = (
                record.timestamp + QUARANTINE_SECONDS
            )
    for failure in test.ground_truth.failures:
        expiry = quarantines.get(failure.node.cabinet)
        # (Retrospective join: a real scheduler would check at failure time;
        # here we count failures whose terminal fell inside any quarantine
        # window of their cabinet.)
        if expiry is not None and failure.terminal_time <= expiry:
            protected += 1

    total = len(test.ground_truth.failures)
    print(f"warnings raised:        {warned}")
    print(f"failures in test split: {total}")
    print(
        f"failures inside an active cabinet quarantine: {protected} "
        f"({100 * protected / max(total, 1):.0f}%)"
    )
    print(
        "\nEvery such failure struck a cabinet that was already quarantined"
        " when the node died — its jobs would have been placed elsewhere."
    )


if __name__ == "__main__":
    main()
