#!/usr/bin/env python
"""Full four-system evaluation (Figures 4, 5 and 7 in one run).

Trains and evaluates Desh on all four synthetic machines M1-M4 and
prints the per-system prediction rates, FP/FN rates and lead-time
statistics the paper's evaluation section reports.  Takes a few minutes.

Run:
    python examples/train_four_systems.py
"""

from __future__ import annotations

import time

from repro import Desh, DeshConfig, generate_system
from repro.analysis import Evaluator, lead_time_overall, render_table


def main() -> None:
    rows = []
    for name in ("M1", "M2", "M3", "M4"):
        start = time.perf_counter()
        log = generate_system(name, seed=2018)
        train, test = log.split(0.3)
        model = Desh(DeshConfig()).fit(list(train.records), train_classifier=False)
        result = Evaluator(test.ground_truth).evaluate(model.score(test.records))
        m = result.metrics
        lead = lead_time_overall(result)
        elapsed = time.perf_counter() - start
        print(
            f"{name}: {len(log)} records, {model.num_chains} chains, "
            f"{elapsed:.0f}s"
        )
        rows.append(
            [
                name,
                f"{m.recall:.1f}",
                f"{m.precision:.1f}",
                f"{m.accuracy:.1f}",
                f"{m.f1:.1f}",
                f"{m.fp_rate:.1f}",
                f"{m.fn_rate:.1f}",
                f"{lead.mean:.0f}±{lead.std:.0f}s",
            ]
        )

    print()
    print(
        render_table(
            ["Sys", "Recall", "Prec", "Acc", "F1", "FP%", "FN%", "Lead"],
            rows,
            title="Figures 4, 5, 7 — per-system prediction rates and lead times",
        )
    )


if __name__ == "__main__":
    main()
