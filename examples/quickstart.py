#!/usr/bin/env python
"""Quickstart: train Desh on a synthetic Cray log and predict failures.

Generates the M3 system (a scaled Cray XC40), trains the three-phase
pipeline on the first 30% of the log (the paper's split), scores the
remaining 70%, and prints operator-style warnings plus the Table-6
metrics.

Run:
    python examples/quickstart.py
"""

from __future__ import annotations

import time

from repro import Desh, DeshConfig, generate_system
from repro.analysis import Evaluator, lead_time_overall


def main() -> None:
    print("Generating synthetic system M3 (scaled Cray XC40) ...")
    log = generate_system("M3", seed=7)
    train, test = log.split(0.3)
    print(
        f"  {len(log)} log records over {log.config.horizon / 3600:.0f}h, "
        f"{len(log.ground_truth.failures)} injected node failures "
        f"({len(train.records)} train / {len(test.records)} test records)"
    )

    print("Training Desh (phase 1: embeddings + chains; phase 2: lead times) ...")
    start = time.perf_counter()
    model = Desh(DeshConfig()).fit(list(train.records))
    print(
        f"  trained in {time.perf_counter() - start:.1f}s: "
        f"{model.num_phrases} phrases mined, {model.num_chains} failure chains, "
        f"phase-1 next-phrase accuracy {model.phase1.train_accuracy:.2f}"
    )

    print("Scoring test data (phase 3) ...")
    warnings = model.warn(test.records)
    print(f"  {len(warnings)} failure warnings raised; first five:")
    for w in warnings[:5]:
        print(f"    {w.message()}")

    result = Evaluator(test.ground_truth).evaluate(model.score(test.records))
    m = result.metrics
    lead = lead_time_overall(result)
    print("\nPrediction efficiency (Table 6 metrics):")
    print(f"  recall    {m.recall:6.2f}%     precision {m.precision:6.2f}%")
    print(f"  accuracy  {m.accuracy:6.2f}%     F1 score  {m.f1:6.2f}%")
    print(f"  FP rate   {m.fp_rate:6.2f}%     FN rate   {m.fn_rate:6.2f}%")
    print(
        f"  avg lead time {lead.mean:.0f}s ({lead.mean_minutes:.1f} min) "
        f"over {lead.count} correctly predicted failures"
    )


if __name__ == "__main__":
    main()
