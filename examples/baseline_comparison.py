#!/usr/bin/env python
"""Compare Desh against DeepLog, n-gram and severity baselines (Table 10).

All four detectors are trained on the same 30% split and scored on the
same test episodes, so recall / precision / lead time are directly
comparable.  Expected shape (paper Section 4.5): Desh provides lead
times with balanced recall/precision; DeepLog-style per-entry detection
catches anomalies but with no failure-chain notion its precision on
*node-failure* prediction drops; the severity strawman has high recall
and poor precision (Observation 6).

Run:
    python examples/baseline_comparison.py
"""

from __future__ import annotations

from repro import Desh, DeshConfig, generate_system
from repro.analysis import Evaluator, lead_time_overall, render_table
from repro.baselines import DeepLogDetector, NGramDetector, SeverityDetector


def main() -> None:
    print("Generating system M3 and training all detectors ...")
    log = generate_system("M3", seed=13)
    train, test = log.split(0.3)

    desh = Desh(DeshConfig()).fit(list(train.records), train_classifier=False)
    train_parsed = desh.parser.transform(train.records)
    id_sequences = [
        seq.phrase_ids()
        for seq in train_parsed.by_node().values()
        if seq.node is not None
    ]
    deeplog = DeepLogDetector(desh.num_phrases, seed=1).fit(id_sequences)
    ngram = NGramDetector().fit(id_sequences)
    severity = SeverityDetector()

    test_parsed = desh.parser.transform(test.records)
    sequences = [
        s for s in test_parsed.by_node().values() if s.node is not None
    ]
    evaluator = Evaluator(test.ground_truth)

    rows = []
    for name, verdicts in (
        ("Desh", desh.predictor.predict_sequences(sequences)),
        ("DeepLog", deeplog.predict_sequences(sequences)),
        ("N-gram", ngram.predict_sequences(sequences)),
        ("Severity", severity.predict_sequences(sequences)),
    ):
        result = evaluator.evaluate(verdicts)
        m = result.metrics
        lead = lead_time_overall(result)
        rows.append(
            [
                name,
                f"{m.recall:.1f}",
                f"{m.precision:.1f}",
                f"{m.accuracy:.1f}",
                f"{m.fp_rate:.1f}",
                f"{lead.mean:.0f}s",
            ]
        )

    print()
    print(
        render_table(
            ["Method", "Recall%", "Precision%", "Accuracy%", "FP rate%", "Avg lead"],
            rows,
            title="Table 10 — node-failure prediction, identical data",
        )
    )
    print(
        "\nNote: only Desh *predicts lead times from learned dT chains*; "
        "baseline leads are measured retrospectively from their first "
        "per-entry anomaly."
    )


if __name__ == "__main__":
    main()
