#!/usr/bin/env python
"""Live monitor: replay a test log through a trained Desh, event by event.

Demonstrates :class:`repro.core.StreamingMonitor` — the *online* scoring
mode: the monitor consumes raw log lines in timestamp order (as a log
daemon would), maintains per-node episode buffers, and the moment a
node's anomalous activity matches a trained failure chain it emits the
Section-4.5 warning:

    In X minutes, node N located at cabinet ... is expected to fail.

Each warning is then compared to the ground truth after the fact.

Run:
    python examples/live_monitor.py
"""

from __future__ import annotations

from repro import Desh, DeshConfig, generate_system
from repro.core import StreamingMonitor

# Re-exported so the tests can exercise the example's moving part
# directly; the implementation lives in the library.
LiveMonitor = StreamingMonitor


def main() -> None:
    print("Training Desh on system M4 ...")
    log = generate_system("M4", seed=21)
    train, test = log.split(0.3)
    model = Desh(DeshConfig()).fit(list(train.records), train_classifier=False)
    print(f"  {model.num_chains} failure chains learned\n")

    monitor = StreamingMonitor(model)
    truth = test.ground_truth
    hits = misses = 0
    print("Replaying test log ...")
    for record in test.records:
        warning = monitor.feed(record)
        if warning is None:
            continue
        actual = truth.failure_near(
            warning.node, warning.decision_time, lookahead=700.0
        )
        if actual is not None:
            verdict = (
                "CONFIRMED: terminal came "
                f"{actual.terminal_time - warning.decision_time:.0f}s later"
            )
            hits += 1
        else:
            verdict = "false alarm"
            misses += 1
        stamp = record.wallclock().strftime("%H:%M:%S")
        print(f"  [{stamp}] {warning.message()}  ({verdict})")

    total = len(truth.failures)
    print(
        f"\n{hits} of {total} failures warned ahead of time online, "
        f"{misses} false alarms over {monitor.records_seen} records."
    )


if __name__ == "__main__":
    main()
